// Package synth elaborates Verilog RTL into the gate-level netlist IR.
// It plays the role of the commercial synthesis tool in the FACTOR
// flow: it flattens the module hierarchy, bit-blasts word-level
// operations into a small cell library, infers flip-flops from clocked
// always blocks, and (optionally) removes dead and redundant logic via
// constant propagation, structural hashing and a reachability sweep.
//
// Deviations from full Verilog semantics, chosen deliberately for the
// ATPG use case and documented here:
//
//   - A single implicit clock domain: every edge-triggered always block
//     infers positive-edge DFFs of the same clock; asynchronous-reset
//     patterns are synthesized as synchronous resets (the reset term
//     becomes part of the D-input logic).
//   - Unknown (x/z) literal bits are only meaningful as casez/casex
//     wildcards; elsewhere they are rejected.
//   - Signed arithmetic and division/modulo by non-constants are
//     rejected.
//   - Expression width calculation is simplified: operands of a binary
//     operation are zero-extended to the wider operand, and results are
//     truncated or zero-extended at assignment.
package synth

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"factor/internal/netlist"
	"factor/internal/telemetry"
	"factor/internal/verilog"
)

// Options controls elaboration.
type Options struct {
	// TopParams overrides parameters of the top module by name.
	TopParams map[string]int64
	// NoOptimize skips the optimization passes (used by ablation
	// benches to measure what optimization buys).
	NoOptimize bool
	// MaxLoopIterations bounds loop unrolling; 0 means the default.
	MaxLoopIterations int
}

const defaultMaxLoopIterations = 4096

// Warning is a non-fatal elaboration diagnostic.
type Warning struct {
	Pos verilog.Pos
	Msg string
}

func (w Warning) String() string { return fmt.Sprintf("%s: warning: %s", w.Pos, w.Msg) }

// Result is the output of Synthesize.
type Result struct {
	Netlist  *netlist.Netlist
	Warnings []Warning
	// GatesBeforeOpt is the gate count before optimization (equals the
	// final count when NoOptimize is set).
	GatesBeforeOpt int
}

// Synthesize elaborates the module named top from src into a flat
// gate-level netlist.
//
// Synthesize is a hardened API boundary: netlist construction panics
// (invariant violations, combinational cycles discovered mid-pass)
// are converted into returned errors here, so malformed RTL can never
// crash the process.
func Synthesize(src *verilog.SourceFile, top string, opts Options) (*Result, error) {
	return SynthesizeContext(context.Background(), src, top, opts)
}

// SynthesizeContext is Synthesize with a context carrying an optional
// telemetry handle: the elaboration is bracketed by a "synth" span and
// the gate counts before/after optimization and the warning count are
// recorded as deterministic counters.
func SynthesizeContext(ctx context.Context, src *verilog.SourceFile, top string, opts Options) (res *Result, err error) {
	tel := telemetry.FromContext(ctx)
	span := tel.StartSpan("synth").WithTID(telemetry.WorkerIDFromContext(ctx)).WithArg("top", top)
	defer span.End()
	defer func() {
		if res != nil {
			tel.AddCounter("synth.gates_before", uint64(res.GatesBeforeOpt))
			tel.AddCounter("synth.gates_after", uint64(res.Netlist.NumGates()))
			tel.AddCounter("synth.warnings", uint64(len(res.Warnings)))
		}
	}()
	defer netlist.RecoverInvariant(&err)
	mod := src.Module(top)
	if mod == nil {
		return nil, fmt.Errorf("synth: top module %q not found", top)
	}
	e := &elab{
		sf:      src,
		nl:      netlist.New(top),
		opts:    opts,
		maxLoop: opts.MaxLoopIterations,
	}
	if e.maxLoop <= 0 {
		e.maxLoop = defaultMaxLoopIterations
	}
	e.zero = e.nl.AddGate(netlist.Const0)
	e.one = e.nl.AddGate(netlist.Const1)

	params := map[string]int64{}
	for k, v := range opts.TopParams {
		params[k] = v
	}
	sc, err := e.elaborateModule(mod, "", params, nil)
	if err != nil {
		return nil, err
	}
	// Top-level ports become PIs/POs.
	for _, port := range mod.Ports {
		sig := sc.signals[port.Name]
		switch port.Dir {
		case verilog.PortInput:
			for i := 0; i < sig.width; i++ {
				pi := e.nl.AddInput(bitName(port.Name, sig, i))
				e.nl.SetFanin(sig.anchors[i], 0, pi)
				sig.driven[i] = true
			}
		case verilog.PortOutput:
			for i := 0; i < sig.width; i++ {
				e.nl.AddOutput(bitName(port.Name, sig, i), sig.anchors[i])
			}
		case verilog.PortInout:
			return nil, fmt.Errorf("synth: %s: inout ports are not supported (port %s)", port.Pos, port.Name)
		}
	}
	if err := e.finishScopes(); err != nil {
		return nil, err
	}
	// Bake gate provenance: ranges are appended innermost-first, so the
	// first range containing a gate is its creating instance.
	for _, r := range e.ranges {
		for id := r.start; id < r.end; id++ {
			if e.nl.Gates[id].Scope == "" && r.prefix != "" {
				e.nl.Gates[id].Scope = r.prefix
			}
		}
	}
	// Catch combinational cycles (e.g. mutually-dependent continuous
	// assignments) before the optimizer walks the graph, so the failure
	// is a structured error naming the cycle rather than a panic deep in
	// a TopoOrder call.
	if _, cerr := e.nl.TopoOrderErr(); cerr != nil {
		return nil, fmt.Errorf("synth: %s: %w", top, cerr)
	}
	res = &Result{Warnings: e.warnings, GatesBeforeOpt: e.nl.NumGates()}
	if opts.NoOptimize {
		res.Netlist = e.nl
	} else {
		res.Netlist = Optimize(e.nl)
	}
	if err := res.Netlist.Validate(); err != nil {
		return nil, fmt.Errorf("synth: internal error: produced invalid netlist: %v", err)
	}
	return res, nil
}

func bitName(port string, sig *signal, i int) string {
	if sig.width == 1 && !sig.vector {
		return port
	}
	return fmt.Sprintf("%s[%d]", port, i+sig.lsb)
}

// signal is one declared net/reg within a scope, bit-blasted to anchor
// gates (Buf) whose fanin is set when the driver is known. Index 0 of
// anchors is the LSB (declared bit lsb).
type signal struct {
	name   string
	width  int
	lsb    int
	msb    int
	vector bool // declared with a range
	kind   verilog.NetKind
	isPort bool
	dir    verilog.PortDir
	pos    verilog.Pos

	anchors []int
	driven  []bool
}

// scope is one elaborated module instance.
type scope struct {
	prefix  string // hierarchical prefix including trailing dot, "" for top
	mod     *verilog.Module
	params  map[string]int64
	sigs    []*signal // declaration order
	signals map[string]*signal
	funcs   map[string]*verilog.FunctionDecl
}

type elab struct {
	sf       *verilog.SourceFile
	nl       *netlist.Netlist
	opts     Options
	zero     int
	one      int
	warnings []Warning
	scopes   []*scope
	maxLoop  int
	depth    int
	// ranges records the contiguous gate-ID span each module instance
	// created, innermost instances first (they finish elaboration
	// before their parents). Used to bake Gate.Scope provenance.
	ranges []scopeRange
}

type scopeRange struct {
	prefix     string
	start, end int
}

func (e *elab) warnf(pos verilog.Pos, format string, args ...interface{}) {
	e.warnings = append(e.warnings, Warning{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// constBV returns a BV of width w holding the constant v.
func (e *elab) constBV(v uint64, w int) []int {
	bv := make([]int, w)
	for i := 0; i < w; i++ {
		if v&(1<<uint(i)) != 0 {
			bv[i] = e.one
		} else {
			bv[i] = e.zero
		}
	}
	return bv
}

const maxHierDepth = 64

// elaborateModule elaborates one module instance. conns, when non-nil,
// carries bit drivers for input ports (by port name); output ports are
// returned through the scope for the caller to wire up.
func (e *elab) elaborateModule(mod *verilog.Module, prefix string, params map[string]int64, _ map[string][]int) (*scope, error) {
	if e.depth++; e.depth > maxHierDepth {
		return nil, fmt.Errorf("synth: module hierarchy deeper than %d (recursive instantiation of %s?)", maxHierDepth, mod.Name)
	}
	defer func() { e.depth-- }()

	sc := &scope{
		prefix:  prefix,
		mod:     mod,
		params:  params,
		signals: map[string]*signal{},
		funcs:   map[string]*verilog.FunctionDecl{},
	}
	e.scopes = append(e.scopes, sc)
	rangeStart := len(e.nl.Gates)
	defer func() {
		e.ranges = append(e.ranges, scopeRange{prefix: prefix, start: rangeStart, end: len(e.nl.Gates)})
	}()

	// Pass 1: parameters (defaults for those not overridden).
	for _, item := range mod.Items {
		pd, ok := item.(*verilog.ParamDecl)
		if !ok {
			continue
		}
		for i, name := range pd.Names {
			if _, overridden := params[name]; overridden && !pd.Local {
				continue
			}
			v, err := e.constEval(sc, pd.Values[i])
			if err != nil {
				return nil, fmt.Errorf("synth: %s: parameter %s: %v", pd.Pos, name, err)
			}
			params[name] = v
		}
	}
	// Pass 2: declarations (ports first, then body nets) and functions.
	for _, port := range mod.Ports {
		if _, err := e.declare(sc, port.Name, port.Width, netKindForPort(port), port.Pos, true, port.Dir); err != nil {
			return nil, err
		}
	}
	for _, item := range mod.Items {
		switch it := item.(type) {
		case *verilog.NetDecl:
			for _, name := range it.Names {
				if existing, ok := sc.signals[name]; ok {
					// Port re-declaration (non-ANSI style): verify width.
					w, lsb, _, err := e.rangeBounds(sc, it.Width)
					if err != nil {
						return nil, fmt.Errorf("synth: %s: %v", it.Pos, err)
					}
					if w != existing.width || lsb != existing.lsb {
						return nil, fmt.Errorf("synth: %s: conflicting widths for %s", it.Pos, name)
					}
					if it.Kind == verilog.NetReg {
						existing.kind = verilog.NetReg
					}
					continue
				}
				if _, err := e.declare(sc, name, it.Width, it.Kind, it.Pos, false, 0); err != nil {
					return nil, err
				}
			}
		case *verilog.FunctionDecl:
			sc.funcs[it.Name] = it
		}
	}
	// Pass 3: behavioral and structural items.
	for _, item := range mod.Items {
		switch it := item.(type) {
		case *verilog.AssignItem:
			rhs, err := e.synthExpr(sc, it.RHS, nil)
			if err != nil {
				return nil, err
			}
			if err := e.driveLValue(sc, it.LHS, rhs); err != nil {
				return nil, err
			}
		case *verilog.AlwaysBlock:
			if err := e.synthAlways(sc, it); err != nil {
				return nil, err
			}
		case *verilog.GateInst:
			if err := e.synthGate(sc, it); err != nil {
				return nil, err
			}
		case *verilog.Instance:
			if err := e.synthInstance(sc, it); err != nil {
				return nil, err
			}
		case *verilog.InitialBlock:
			e.warnf(it.Pos, "initial block ignored by synthesis")
		}
	}
	return sc, nil
}

func netKindForPort(p *verilog.Port) verilog.NetKind {
	if p.IsReg {
		return verilog.NetReg
	}
	return verilog.NetWire
}

// declare creates the bit-blasted signal with its anchor gates.
func (e *elab) declare(sc *scope, name string, r *verilog.Range, kind verilog.NetKind, pos verilog.Pos, isPort bool, dir verilog.PortDir) (*signal, error) {
	if kind == verilog.NetInteger {
		r = &verilog.Range{
			MSB: &verilog.Number{Width: 32, Value: 31},
			LSB: &verilog.Number{Width: 32, Value: 0},
		}
	}
	w, lsb, msb, err := e.rangeBounds(sc, r)
	if err != nil {
		return nil, fmt.Errorf("synth: %s: signal %s: %v", pos, name, err)
	}
	sig := &signal{
		name: name, width: w, lsb: lsb, msb: msb, vector: r != nil,
		kind: kind, isPort: isPort, dir: dir, pos: pos,
		anchors: make([]int, w),
		driven:  make([]bool, w),
	}
	for i := 0; i < w; i++ {
		sig.anchors[i] = e.nl.AddGate(netlist.Buf, e.zero)
		e.nl.Gates[sig.anchors[i]].Name = sc.prefix + bitName(name, sig, i)
	}
	switch kind {
	case verilog.NetSupply0:
		for i := 0; i < w; i++ {
			e.nl.SetFanin(sig.anchors[i], 0, e.zero)
			sig.driven[i] = true
		}
	case verilog.NetSupply1:
		for i := 0; i < w; i++ {
			e.nl.SetFanin(sig.anchors[i], 0, e.one)
			sig.driven[i] = true
		}
	}
	sc.sigs = append(sc.sigs, sig)
	sc.signals[name] = sig
	return sig, nil
}

// rangeBounds evaluates a declaration range. nil means scalar.
func (e *elab) rangeBounds(sc *scope, r *verilog.Range) (width, lsb, msb int, err error) {
	if r == nil {
		return 1, 0, 0, nil
	}
	m, err := e.constEval(sc, r.MSB)
	if err != nil {
		return 0, 0, 0, err
	}
	l, err := e.constEval(sc, r.LSB)
	if err != nil {
		return 0, 0, 0, err
	}
	if l > m {
		return 0, 0, 0, fmt.Errorf("descending ranges [%d:%d] are not supported", m, l)
	}
	if m-l+1 > 64 {
		return 0, 0, 0, fmt.Errorf("vector wider than 64 bits [%d:%d]", m, l)
	}
	return int(m - l + 1), int(l), int(m), nil
}

// driveLValue connects value bits to the anchors selected by an lvalue
// expression (identifier, bit/part select or concatenation).
func (e *elab) driveLValue(sc *scope, lhs verilog.Expr, value []int) error {
	bits, err := e.lvalueBits(sc, lhs)
	if err != nil {
		return err
	}
	value = extend(value, len(bits), e.zero)
	for i, ref := range bits {
		if ref.sig.driven[ref.idx] {
			return fmt.Errorf("synth: %s: multiple drivers for %s bit %d", lhs.ExprPos(), ref.sig.name, ref.idx+ref.sig.lsb)
		}
		e.nl.SetFanin(ref.sig.anchors[ref.idx], 0, value[i])
		ref.sig.driven[ref.idx] = true
	}
	return nil
}

// bitRef identifies one bit of a declared signal.
type bitRef struct {
	sig *signal
	idx int // 0-based from LSB
}

// lvalueBits resolves an lvalue to its component bits, LSB first.
func (e *elab) lvalueBits(sc *scope, lhs verilog.Expr) ([]bitRef, error) {
	switch v := lhs.(type) {
	case *verilog.Ident:
		sig, ok := sc.signals[v.Name]
		if !ok {
			return nil, fmt.Errorf("synth: %s: assignment to undeclared signal %s", v.Pos, v.Name)
		}
		bits := make([]bitRef, sig.width)
		for i := range bits {
			bits[i] = bitRef{sig, i}
		}
		return bits, nil
	case *verilog.IndexExpr:
		id, ok := v.X.(*verilog.Ident)
		if !ok {
			return nil, fmt.Errorf("synth: %s: unsupported lvalue", v.ExprPos())
		}
		sig, ok := sc.signals[id.Name]
		if !ok {
			return nil, fmt.Errorf("synth: %s: assignment to undeclared signal %s", v.ExprPos(), id.Name)
		}
		idx, err := e.constEval(sc, v.Index)
		if err != nil {
			return nil, fmt.Errorf("synth: %s: non-constant bit select on lvalue %s: %v", v.ExprPos(), id.Name, err)
		}
		bit := int(idx) - sig.lsb
		if bit < 0 || bit >= sig.width {
			return nil, fmt.Errorf("synth: %s: bit select %s[%d] out of range", v.ExprPos(), id.Name, idx)
		}
		return []bitRef{{sig, bit}}, nil
	case *verilog.RangeExpr:
		id, ok := v.X.(*verilog.Ident)
		if !ok {
			return nil, fmt.Errorf("synth: %s: unsupported lvalue", v.ExprPos())
		}
		sig, ok := sc.signals[id.Name]
		if !ok {
			return nil, fmt.Errorf("synth: %s: assignment to undeclared signal %s", v.ExprPos(), id.Name)
		}
		msb, err := e.constEval(sc, v.MSB)
		if err != nil {
			return nil, err
		}
		lsb, err := e.constEval(sc, v.LSB)
		if err != nil {
			return nil, err
		}
		lo, hi := int(lsb)-sig.lsb, int(msb)-sig.lsb
		if lo < 0 || hi >= sig.width || lo > hi {
			return nil, fmt.Errorf("synth: %s: part select %s[%d:%d] out of range", v.ExprPos(), id.Name, msb, lsb)
		}
		bits := make([]bitRef, hi-lo+1)
		for i := range bits {
			bits[i] = bitRef{sig, lo + i}
		}
		return bits, nil
	case *verilog.ConcatExpr:
		// Verilog concatenation is MSB-first: the first part is the
		// most significant. Collect parts and reverse.
		var all []bitRef
		for i := len(v.Parts) - 1; i >= 0; i-- {
			bits, err := e.lvalueBits(sc, v.Parts[i])
			if err != nil {
				return nil, err
			}
			all = append(all, bits...)
		}
		return all, nil
	}
	return nil, fmt.Errorf("synth: %s: unsupported lvalue expression", lhs.ExprPos())
}

// synthGate elaborates a gate primitive instance.
func (e *elab) synthGate(sc *scope, g *verilog.GateInst) error {
	// Output is Args[0] (for buf/not there may be multiple outputs,
	// all but the last arg).
	evalInput := func(x verilog.Expr) (int, error) {
		bv, err := e.synthExpr(sc, x, nil)
		if err != nil {
			return 0, err
		}
		return e.reduceOr(bv), nil
	}
	switch g.Kind {
	case "buf", "not":
		in, err := evalInput(g.Args[len(g.Args)-1])
		if err != nil {
			return err
		}
		var out int
		if g.Kind == "not" {
			out = e.nl.AddGate(netlist.Not, in)
		} else {
			out = e.nl.AddGate(netlist.Buf, in)
		}
		for _, lhs := range g.Args[:len(g.Args)-1] {
			if err := e.driveLValue(sc, lhs, []int{out}); err != nil {
				return err
			}
		}
		return nil
	}
	var kind netlist.GateKind
	switch g.Kind {
	case "and":
		kind = netlist.And
	case "or":
		kind = netlist.Or
	case "nand":
		kind = netlist.Nand
	case "nor":
		kind = netlist.Nor
	case "xor":
		kind = netlist.Xor
	case "xnor":
		kind = netlist.Xnor
	default:
		return fmt.Errorf("synth: %s: unknown gate primitive %q", g.Pos, g.Kind)
	}
	if len(g.Args) < 3 {
		return fmt.Errorf("synth: %s: gate %s needs an output and at least two inputs", g.Pos, g.Kind)
	}
	// N-input gates become balanced 2-input trees; for the inverting
	// kinds the inversion applies once at the root.
	var base netlist.GateKind
	invert := false
	switch kind {
	case netlist.Nand:
		base, invert = netlist.And, true
	case netlist.Nor:
		base, invert = netlist.Or, true
	case netlist.Xnor:
		base, invert = netlist.Xor, true
	default:
		base = kind
	}
	var ins []int
	for _, a := range g.Args[1:] {
		in, err := evalInput(a)
		if err != nil {
			return err
		}
		ins = append(ins, in)
	}
	out := e.tree(base, ins)
	if invert {
		out = e.nl.AddGate(netlist.Not, out)
	}
	return e.driveLValue(sc, g.Args[0], []int{out})
}

// tree builds a balanced binary tree of 2-input gates.
func (e *elab) tree(kind netlist.GateKind, ins []int) int {
	for len(ins) > 1 {
		var next []int
		for i := 0; i+1 < len(ins); i += 2 {
			next = append(next, e.nl.AddGate(kind, ins[i], ins[i+1]))
		}
		if len(ins)%2 == 1 {
			next = append(next, ins[len(ins)-1])
		}
		ins = next
	}
	return ins[0]
}

// synthInstance elaborates a child module instance and wires its ports.
func (e *elab) synthInstance(sc *scope, inst *verilog.Instance) error {
	child := e.sf.Module(inst.ModuleName)
	if child == nil {
		return fmt.Errorf("synth: %s: instance %s of unknown module %s", inst.Pos, inst.Name, inst.ModuleName)
	}
	// Parameter overrides.
	params := map[string]int64{}
	var declOrder []string
	for _, item := range child.Items {
		if pd, ok := item.(*verilog.ParamDecl); ok && !pd.Local {
			declOrder = append(declOrder, pd.Names...)
		}
	}
	for i, pa := range inst.Params {
		name := pa.Name
		if name == "" {
			if i >= len(declOrder) {
				return fmt.Errorf("synth: %s: too many positional parameters for %s", inst.Pos, inst.ModuleName)
			}
			name = declOrder[i]
		}
		v, err := e.constEval(sc, pa.Value)
		if err != nil {
			return fmt.Errorf("synth: %s: parameter %s: %v", inst.Pos, name, err)
		}
		params[name] = v
	}
	childScope, err := e.elaborateModule(child, sc.prefix+inst.Name+".", params, nil)
	if err != nil {
		return err
	}
	// Resolve connections.
	conns := map[string]verilog.Expr{}
	positional := false
	for _, c := range inst.Conns {
		if c.Port == "" {
			positional = true
			break
		}
	}
	if positional {
		if len(inst.Conns) > len(child.Ports) {
			return fmt.Errorf("synth: %s: too many connections for %s", inst.Pos, inst.ModuleName)
		}
		for i, c := range inst.Conns {
			if c.Port != "" {
				return fmt.Errorf("synth: %s: cannot mix positional and named connections", inst.Pos)
			}
			conns[child.Ports[i].Name] = c.Expr
		}
	} else {
		for _, c := range inst.Conns {
			if child.Port(c.Port) == nil {
				return fmt.Errorf("synth: %s: module %s has no port %s", inst.Pos, inst.ModuleName, c.Port)
			}
			conns[c.Port] = c.Expr
		}
	}
	for _, port := range child.Ports {
		expr, connected := conns[port.Name]
		csig := childScope.signals[port.Name]
		switch port.Dir {
		case verilog.PortInput:
			if !connected || expr == nil {
				e.warnf(inst.Pos, "input port %s.%s unconnected; tied to 0", inst.Name, port.Name)
				for i := 0; i < csig.width; i++ {
					e.nl.SetFanin(csig.anchors[i], 0, e.zero)
					csig.driven[i] = true
				}
				continue
			}
			bv, err := e.synthExpr(sc, expr, nil)
			if err != nil {
				return err
			}
			bv = extend(bv, csig.width, e.zero)
			for i := 0; i < csig.width; i++ {
				e.nl.SetFanin(csig.anchors[i], 0, bv[i])
				csig.driven[i] = true
			}
		case verilog.PortOutput:
			if !connected || expr == nil {
				continue // open output
			}
			value := make([]int, csig.width)
			copy(value, csig.anchors)
			if err := e.driveLValue(sc, expr, value); err != nil {
				return err
			}
		case verilog.PortInout:
			return fmt.Errorf("synth: %s: inout port %s.%s not supported", inst.Pos, inst.Name, port.Name)
		}
	}
	return nil
}

// finishScopes verifies that every non-input signal bit received a
// driver; undriven bits are tied to 0 with a warning (these are exactly
// the dangling nets FACTOR's testability analysis reports).
func (e *elab) finishScopes() error {
	for _, sc := range e.scopes {
		for _, sig := range sc.sigs {
			if sig.isPort && sig.dir == verilog.PortInput && sc.prefix == "" {
				continue
			}
			for i := 0; i < sig.width; i++ {
				if !sig.driven[i] {
					e.warnf(sig.pos, "net %s%s has no driver; tied to 0", sc.prefix, bitName(sig.name, sig, i))
					e.nl.SetFanin(sig.anchors[i], 0, e.zero)
					sig.driven[i] = true
				}
			}
		}
	}
	return nil
}

// extend truncates or zero-extends bv to width w.
func extend(bv []int, w int, zero int) []int {
	if len(bv) == w {
		return bv
	}
	out := make([]int, w)
	for i := 0; i < w; i++ {
		if i < len(bv) {
			out[i] = bv[i]
		} else {
			out[i] = zero
		}
	}
	return out
}

// SortedWarnings renders warnings deterministically for reports.
func SortedWarnings(ws []Warning) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.String()
	}
	sort.Strings(out)
	return out
}

// MustSynthesize is a test helper that panics on error.
func MustSynthesize(src *verilog.SourceFile, top string, opts Options) *Result {
	r, err := Synthesize(src, top, opts)
	if err != nil {
		panic(fmt.Sprintf("synth.MustSynthesize(%s): %v", top, err))
	}
	return r
}

// DescribeScopePath is a debugging helper that formats a hierarchical
// net name from prefix parts.
func DescribeScopePath(parts ...string) string { return strings.Join(parts, ".") }
