package synth

import (
	"strings"
	"testing"

	"factor/internal/netlist"
	"factor/internal/sim"
	"factor/internal/verilog"
)

// harness wraps a synthesized netlist with word-level port access.
type harness struct {
	t  *testing.T
	nl *netlist.Netlist
	s  *sim.Simulator
}

func synthSrc(t *testing.T, src, top string, opts Options) *Result {
	t.Helper()
	sf, err := verilog.Parse("test.v", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Synthesize(sf, top, opts)
	if err != nil {
		t.Fatalf("synth: %v", err)
	}
	return res
}

func newHarness(t *testing.T, src, top string, opts Options) *harness {
	t.Helper()
	res := synthSrc(t, src, top, opts)
	return &harness{t: t, nl: res.Netlist, s: sim.New(res.Netlist)}
}

// in sets a (possibly multi-bit) input port to an integer value.
func (h *harness) in(name string, value uint64) {
	h.t.Helper()
	if pi := h.nl.PI(name); pi >= 0 {
		h.s.SetInputScalar(pi, sim.Logic(value&1))
		return
	}
	found := false
	for i := 0; i < 64; i++ {
		pi := h.nl.PI(bitPortName(name, i))
		if pi < 0 {
			break
		}
		found = true
		h.s.SetInputScalar(pi, sim.Logic((value>>uint(i))&1))
	}
	if !found {
		h.t.Fatalf("no input port %q", name)
	}
}

// out reads a (possibly multi-bit) output port as an integer; it fails
// on X bits.
func (h *harness) out(name string) uint64 {
	h.t.Helper()
	if po := h.nl.PO(name); po >= 0 {
		v := h.s.Value(po).Lane(0)
		if v == sim.LX {
			h.t.Fatalf("output %s is X", name)
		}
		return uint64(v)
	}
	var out uint64
	found := false
	for i := 0; i < 64; i++ {
		po := h.nl.PO(bitPortName(name, i))
		if po < 0 {
			break
		}
		found = true
		v := h.s.Value(po).Lane(0)
		if v == sim.LX {
			h.t.Fatalf("output %s[%d] is X", name, i)
		}
		out |= uint64(v) << uint(i)
	}
	if !found {
		h.t.Fatalf("no output port %q", name)
	}
	return out
}

// outIsX reports whether any bit of the output is X.
func (h *harness) outIsX(name string) bool {
	h.t.Helper()
	if po := h.nl.PO(name); po >= 0 {
		return h.s.Value(po).Lane(0) == sim.LX
	}
	for i := 0; i < 64; i++ {
		po := h.nl.PO(bitPortName(name, i))
		if po < 0 {
			break
		}
		if h.s.Value(po).Lane(0) == sim.LX {
			return true
		}
	}
	return false
}

func bitPortName(name string, i int) string {
	return name + "[" + itoa(i) + "]"
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

func (h *harness) eval() { h.s.Eval() }
func (h *harness) step() { h.s.Step(); h.s.Eval() }

// ---------------------------------------------------------------------------

func TestSynthAdder(t *testing.T) {
	h := newHarness(t, `
module add8(input [7:0] a, b, output [8:0] y);
  assign y = {1'b0, a} + {1'b0, b};
endmodule`, "add8", Options{})
	cases := [][2]uint64{{0, 0}, {1, 1}, {255, 1}, {170, 85}, {200, 100}, {255, 255}}
	for _, c := range cases {
		h.in("a", c[0])
		h.in("b", c[1])
		h.eval()
		if got := h.out("y"); got != c[0]+c[1] {
			t.Errorf("%d+%d = %d, want %d", c[0], c[1], got, c[0]+c[1])
		}
	}
}

func TestSynthSubAndNeg(t *testing.T) {
	h := newHarness(t, `
module subber(input [7:0] a, b, output [7:0] d, n);
  assign d = a - b;
  assign n = -a;
endmodule`, "subber", Options{})
	h.in("a", 100)
	h.in("b", 58)
	h.eval()
	if got := h.out("d"); got != 42 {
		t.Errorf("100-58 = %d, want 42", got)
	}
	wantNeg := uint64(256 - 100)
	if got := h.out("n"); got != wantNeg {
		t.Errorf("-100 = %d, want %d", got, wantNeg)
	}
}

func TestSynthMul(t *testing.T) {
	h := newHarness(t, `
module mult(input [3:0] a, b, output [7:0] y);
  assign y = a * b;
endmodule`, "mult", Options{})
	for a := uint64(0); a < 16; a += 3 {
		for b := uint64(0); b < 16; b += 5 {
			h.in("a", a)
			h.in("b", b)
			h.eval()
			if got := h.out("y"); got != a*b {
				t.Errorf("%d*%d = %d, want %d", a, b, got, a*b)
			}
		}
	}
}

func TestSynthBitwiseAndReduction(t *testing.T) {
	h := newHarness(t, `
module bits(input [3:0] a, b, output [3:0] x, o, e,
            output ra, ro, rx, output nn);
  assign x = a ^ b;
  assign o = a | b;
  assign e = a & ~b;
  assign ra = &a;
  assign ro = |a;
  assign rx = ^a;
  assign nn = !a;
endmodule`, "bits", Options{})
	h.in("a", 0b1010)
	h.in("b", 0b0110)
	h.eval()
	if h.out("x") != 0b1100 || h.out("o") != 0b1110 || h.out("e") != 0b1000 {
		t.Errorf("bitwise: x=%b o=%b e=%b", h.out("x"), h.out("o"), h.out("e"))
	}
	if h.out("ra") != 0 || h.out("ro") != 1 || h.out("rx") != 0 || h.out("nn") != 0 {
		t.Errorf("reductions: ra=%d ro=%d rx=%d nn=%d", h.out("ra"), h.out("ro"), h.out("rx"), h.out("nn"))
	}
	h.in("a", 0b1111)
	h.eval()
	if h.out("ra") != 1 || h.out("rx") != 0 {
		t.Errorf("a=1111: ra=%d rx=%d", h.out("ra"), h.out("rx"))
	}
	h.in("a", 0b0111)
	h.eval()
	if h.out("rx") != 1 {
		t.Errorf("a=0111: rx=%d, want 1", h.out("rx"))
	}
}

func TestSynthComparisons(t *testing.T) {
	h := newHarness(t, `
module cmp(input [3:0] a, b, output lt, le, gt, ge, eq, ne);
  assign lt = a < b;
  assign le = a <= b;
  assign gt = a > b;
  assign ge = a >= b;
  assign eq = a == b;
  assign ne = a != b;
endmodule`, "cmp", Options{})
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			h.in("a", a)
			h.in("b", b)
			h.eval()
			checks := map[string]bool{
				"lt": a < b, "le": a <= b, "gt": a > b,
				"ge": a >= b, "eq": a == b, "ne": a != b,
			}
			for name, want := range checks {
				got := h.out(name) == 1
				if got != want {
					t.Errorf("a=%d b=%d: %s=%v, want %v", a, b, name, got, want)
				}
			}
		}
	}
}

func TestSynthShifts(t *testing.T) {
	h := newHarness(t, `
module sh(input [7:0] a, input [2:0] n, output [7:0] l, r, lc, rc);
  assign l = a << n;
  assign r = a >> n;
  assign lc = a << 3;
  assign rc = a >> 2;
endmodule`, "sh", Options{})
	for _, a := range []uint64{0b10110101, 0xFF, 1} {
		for n := uint64(0); n < 8; n++ {
			h.in("a", a)
			h.in("n", n)
			h.eval()
			if got := h.out("l"); got != (a<<n)&0xFF {
				t.Errorf("a=%#x n=%d: l=%#x want %#x", a, n, got, (a<<n)&0xFF)
			}
			if got := h.out("r"); got != a>>n {
				t.Errorf("a=%#x n=%d: r=%#x want %#x", a, n, got, a>>n)
			}
		}
		h.in("a", a)
		h.in("n", 0)
		h.eval()
		if h.out("lc") != (a<<3)&0xFF || h.out("rc") != a>>2 {
			t.Errorf("const shifts broken for a=%#x", a)
		}
	}
}

func TestSynthVariableShiftOverflowGivesZero(t *testing.T) {
	h := newHarness(t, `
module sh2(input [3:0] a, input [3:0] n, output [3:0] y);
  assign y = a >> n;
endmodule`, "sh2", Options{})
	h.in("a", 0xF)
	h.in("n", 9)
	h.eval()
	if got := h.out("y"); got != 0 {
		t.Errorf("15 >> 9 = %d, want 0", got)
	}
}

func TestSynthTernaryAndConcat(t *testing.T) {
	h := newHarness(t, `
module tc(input s, input [3:0] a, b, output [7:0] y);
  assign y = s ? {a, b} : {b, a};
endmodule`, "tc", Options{})
	h.in("s", 1)
	h.in("a", 0xA)
	h.in("b", 0x5)
	h.eval()
	if got := h.out("y"); got != 0xA5 {
		t.Errorf("s=1: y=%#x, want 0xA5", got)
	}
	h.in("s", 0)
	h.eval()
	if got := h.out("y"); got != 0x5A {
		t.Errorf("s=0: y=%#x, want 0x5A", got)
	}
}

func TestSynthReplicationAndParts(t *testing.T) {
	h := newHarness(t, `
module rp(input [1:0] a, output [7:0] y, output [3:0] hi);
  wire [7:0] t;
  assign t = {4{a}};
  assign y = t;
  assign hi = t[7:4];
endmodule`, "rp", Options{})
	h.in("a", 0b10)
	h.eval()
	if got := h.out("y"); got != 0b10101010 {
		t.Errorf("y=%#b, want 10101010", got)
	}
	if got := h.out("hi"); got != 0b1010 {
		t.Errorf("hi=%#b, want 1010", got)
	}
}

func TestSynthVariableBitSelect(t *testing.T) {
	h := newHarness(t, `
module vb(input [7:0] a, input [2:0] i, output y);
  assign y = a[i];
endmodule`, "vb", Options{})
	a := uint64(0b11001010)
	h.in("a", a)
	for i := uint64(0); i < 8; i++ {
		h.in("i", i)
		h.eval()
		if got := h.out("y"); got != (a>>i)&1 {
			t.Errorf("a[%d] = %d, want %d", i, got, (a>>i)&1)
		}
	}
}

func TestSynthCombAlwaysCase(t *testing.T) {
	h := newHarness(t, `
module alu4(input [1:0] op, input [3:0] a, b, output reg [3:0] y);
  always @(*) begin
    case (op)
      2'b00: y = a + b;
      2'b01: y = a - b;
      2'b10: y = a & b;
      default: y = a ^ b;
    endcase
  end
endmodule`, "alu4", Options{})
	for op := uint64(0); op < 4; op++ {
		for _, ab := range [][2]uint64{{3, 5}, {12, 7}, {15, 15}} {
			h.in("op", op)
			h.in("a", ab[0])
			h.in("b", ab[1])
			h.eval()
			var want uint64
			switch op {
			case 0:
				want = (ab[0] + ab[1]) & 0xF
			case 1:
				want = (ab[0] - ab[1]) & 0xF
			case 2:
				want = ab[0] & ab[1]
			case 3:
				want = ab[0] ^ ab[1]
			}
			if got := h.out("y"); got != want {
				t.Errorf("op=%d a=%d b=%d: y=%d, want %d", op, ab[0], ab[1], got, want)
			}
		}
	}
}

func TestSynthCasezWildcards(t *testing.T) {
	h := newHarness(t, `
module pri(input [3:0] req, output reg [1:0] grant, output reg valid);
  always @(*) begin
    valid = 1'b1;
    casez (req)
      4'b???1: grant = 2'd0;
      4'b??10: grant = 2'd1;
      4'b?100: grant = 2'd2;
      4'b1000: grant = 2'd3;
      default: begin grant = 2'd0; valid = 1'b0; end
    endcase
  end
endmodule`, "pri", Options{})
	cases := []struct {
		req, grant, valid uint64
	}{
		{0b0001, 0, 1}, {0b1111, 0, 1}, {0b0010, 1, 1}, {0b1010, 1, 1},
		{0b0100, 2, 1}, {0b1100, 2, 1}, {0b1000, 3, 1}, {0b0000, 0, 0},
	}
	for _, c := range cases {
		h.in("req", c.req)
		h.eval()
		if h.out("grant") != c.grant || h.out("valid") != c.valid {
			t.Errorf("req=%04b: grant=%d valid=%d, want %d %d",
				c.req, h.out("grant"), h.out("valid"), c.grant, c.valid)
		}
	}
}

func TestSynthClockedCounter(t *testing.T) {
	h := newHarness(t, `
module cnt(input clk, rst, en, output reg [3:0] q);
  always @(posedge clk) begin
    if (rst) q <= 4'd0;
    else if (en) q <= q + 4'd1;
  end
endmodule`, "cnt", Options{})
	h.in("clk", 0)
	h.in("rst", 1)
	h.in("en", 0)
	h.step()
	if got := h.out("q"); got != 0 {
		t.Fatalf("after reset q=%d, want 0", got)
	}
	h.in("rst", 0)
	h.in("en", 1)
	for i := 1; i <= 20; i++ {
		h.step()
		if got := h.out("q"); got != uint64(i%16) {
			t.Fatalf("cycle %d: q=%d, want %d", i, got, i%16)
		}
	}
	h.in("en", 0)
	h.step()
	if got := h.out("q"); got != 4 {
		t.Errorf("hold: q=%d, want 4", got)
	}
}

func TestSynthAsyncResetPatternAsSyncReset(t *testing.T) {
	// The async-reset sensitivity form synthesizes as a sync reset.
	h := newHarness(t, `
module ff(input clk, rst_n, d, output reg q);
  always @(posedge clk or negedge rst_n)
    if (!rst_n) q <= 1'b0;
    else q <= d;
endmodule`, "ff", Options{})
	h.in("rst_n", 0)
	h.in("d", 1)
	h.step()
	if got := h.out("q"); got != 0 {
		t.Errorf("reset: q=%d, want 0", got)
	}
	h.in("rst_n", 1)
	h.step()
	if got := h.out("q"); got != 1 {
		t.Errorf("load: q=%d, want 1", got)
	}
}

func TestSynthBlockingTempInClockedBlock(t *testing.T) {
	h := newHarness(t, `
module acc(input clk, input [3:0] a, b, output reg [3:0] q);
  reg [3:0] tmp;
  always @(posedge clk) begin
    tmp = a ^ b;
    q <= tmp;
  end
endmodule`, "acc", Options{})
	h.in("a", 0b1100)
	h.in("b", 0b1010)
	h.step()
	if got := h.out("q"); got != 0b0110 {
		t.Errorf("q=%04b, want 0110", got)
	}
}

func TestSynthForLoopUnroll(t *testing.T) {
	h := newHarness(t, `
module rev(input [7:0] a, output reg [7:0] y);
  integer i;
  always @(*) begin
    for (i = 0; i < 8; i = i + 1)
      y[i] = a[7 - i];
  end
endmodule`, "rev", Options{})
	h.in("a", 0b11010010)
	h.eval()
	if got := h.out("y"); got != 0b01001011 {
		t.Errorf("y=%08b, want 01001011", got)
	}
}

func TestSynthWhileLoopUnroll(t *testing.T) {
	h := newHarness(t, `
module wsum(input [3:0] a, output reg [5:0] y);
  integer i;
  always @(*) begin
    y = 6'd0;
    i = 0;
    while (i < 3) begin
      y = y + a;
      i = i + 1;
    end
  end
endmodule`, "wsum", Options{})
	h.in("a", 7)
	h.eval()
	if got := h.out("y"); got != 21 {
		t.Errorf("y=%d, want 21", got)
	}
}

func TestSynthFunctionInline(t *testing.T) {
	h := newHarness(t, `
module fn(input [3:0] a, b, output [3:0] y);
  function [3:0] maxv;
    input [3:0] p, q;
    begin
      if (p > q) maxv = p;
      else maxv = q;
    end
  endfunction
  assign y = maxv(a, b);
endmodule`, "fn", Options{})
	h.in("a", 9)
	h.in("b", 4)
	h.eval()
	if got := h.out("y"); got != 9 {
		t.Errorf("max(9,4)=%d, want 9", got)
	}
	h.in("b", 12)
	h.eval()
	if got := h.out("y"); got != 12 {
		t.Errorf("max(9,12)=%d, want 12", got)
	}
}

func TestSynthHierarchyAndParams(t *testing.T) {
	h := newHarness(t, `
module top(input [7:0] a, b, output [7:0] s1, output [3:0] s2);
  addN #(.W(8)) u8 (.x(a), .y(b), .s(s1));
  addN #(.W(4)) u4 (.x(a[3:0]), .y(b[3:0]), .s(s2));
endmodule
module addN #(parameter W = 2)(input [W-1:0] x, y, output [W-1:0] s);
  assign s = x + y;
endmodule`, "top", Options{})
	h.in("a", 0x3C)
	h.in("b", 0x21)
	h.eval()
	if got := h.out("s1"); got != 0x5D {
		t.Errorf("s1=%#x, want 0x5D", got)
	}
	if got := h.out("s2"); got != 0xD {
		t.Errorf("s2=%#x, want 0xD", got)
	}
}

func TestSynthDeepHierarchy(t *testing.T) {
	h := newHarness(t, `
module l0(input [3:0] a, output [3:0] y);
  l1 u (.a(a), .y(y));
endmodule
module l1(input [3:0] a, output [3:0] y);
  l2 u (.a(a), .y(y));
endmodule
module l2(input [3:0] a, output [3:0] y);
  assign y = a + 4'd1;
endmodule`, "l0", Options{})
	h.in("a", 7)
	h.eval()
	if got := h.out("y"); got != 8 {
		t.Errorf("y=%d, want 8", got)
	}
}

func TestSynthGatePrimitives(t *testing.T) {
	h := newHarness(t, `
module gp(input a, b, c, output y1, y2, y3, y4);
  and g1 (y1, a, b, c);
  nor g2 (y2, a, b);
  xnor g3 (y3, a, b);
  not g4 (y4, a);
endmodule`, "gp", Options{})
	for v := uint64(0); v < 8; v++ {
		a, b, c := v&1, (v>>1)&1, (v>>2)&1
		h.in("a", a)
		h.in("b", b)
		h.in("c", c)
		h.eval()
		if got := h.out("y1"); got != a&b&c {
			t.Errorf("and3(%d,%d,%d)=%d", a, b, c, got)
		}
		if got := h.out("y2"); got != (a|b)^1 {
			t.Errorf("nor(%d,%d)=%d", a, b, got)
		}
		if got := h.out("y3"); got != (a^b)^1 {
			t.Errorf("xnor(%d,%d)=%d", a, b, got)
		}
		if got := h.out("y4"); got != a^1 {
			t.Errorf("not(%d)=%d", a, got)
		}
	}
}

func TestSynthLatchInferenceError(t *testing.T) {
	sf, err := verilog.Parse("t.v", `
module latch(input en, d, output reg q);
  always @(*) begin
    if (en) q = d;
  end
endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Synthesize(sf, "latch", Options{}); err == nil || !strings.Contains(err.Error(), "latch") {
		t.Errorf("expected latch inference error, got %v", err)
	}
}

func TestSynthMultipleDriverError(t *testing.T) {
	sf, err := verilog.Parse("t.v", `
module md(input a, b, output y);
  assign y = a;
  assign y = b;
endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Synthesize(sf, "md", Options{}); err == nil || !strings.Contains(err.Error(), "multiple drivers") {
		t.Errorf("expected multiple-driver error, got %v", err)
	}
}

func TestSynthUndrivenWarning(t *testing.T) {
	res := synthSrc(t, `
module ud(input a, output y);
  wire floating;
  assign y = a & floating;
endmodule`, "ud", Options{})
	found := false
	for _, w := range res.Warnings {
		if strings.Contains(w.Msg, "no driver") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected undriven-net warning, got %v", res.Warnings)
	}
}

func TestSynthTopParamsOverride(t *testing.T) {
	h := newHarness(t, `
module pw #(parameter W = 2)(input [W-1:0] a, output [W-1:0] y);
  assign y = ~a;
endmodule`, "pw", Options{TopParams: map[string]int64{"W": 6}})
	h.in("a", 0b101010)
	h.eval()
	if got := h.out("y"); got != 0b010101 {
		t.Errorf("y=%06b, want 010101", got)
	}
	if len(h.nl.PIs) != 6 || len(h.nl.POs) != 6 {
		t.Errorf("PIs=%d POs=%d, want 6 and 6", len(h.nl.PIs), len(h.nl.POs))
	}
}

func TestSynthOptimizeReducesGates(t *testing.T) {
	src := `
module red(input a, b, output y, z);
  wire t1, t2, t3;
  assign t1 = a & 1'b1;
  assign t2 = b | 1'b0;
  assign t3 = a ^ a;
  assign y = t1 & t2;
  assign z = y | t3;
endmodule`
	un := synthSrc(t, src, "red", Options{NoOptimize: true})
	op := synthSrc(t, src, "red", Options{})
	if op.Netlist.NumGates() >= un.Netlist.NumGates() {
		t.Errorf("optimized %d gates >= unoptimized %d", op.Netlist.NumGates(), un.Netlist.NumGates())
	}
	// Behavior must be preserved.
	for v := uint64(0); v < 4; v++ {
		a, b := v&1, v>>1
		for _, res := range []*Result{un, op} {
			s := sim.New(res.Netlist)
			s.SetInputScalar(res.Netlist.PI("a"), sim.Logic(a))
			s.SetInputScalar(res.Netlist.PI("b"), sim.Logic(b))
			s.Eval()
			want := a & b
			if got := s.Value(res.Netlist.PO("y")).Lane(0); got != sim.Logic(want) {
				t.Errorf("a=%d b=%d: y=%v, want %d", a, b, got, want)
			}
			if got := s.Value(res.Netlist.PO("z")).Lane(0); got != sim.Logic(want) {
				t.Errorf("a=%d b=%d: z=%v, want %d", a, b, got, want)
			}
		}
	}
}

func TestSynthStructuralHashingShares(t *testing.T) {
	src := `
module sh(input a, b, output y, z);
  assign y = a & b;
  assign z = a & b;
endmodule`
	res := synthSrc(t, src, "sh", Options{})
	// After hashing, y and z share one AND gate.
	if got := res.Netlist.NumGates(); got != 1 {
		t.Errorf("gates=%d, want 1 shared AND", got)
	}
}

func TestSynthDeadLogicSwept(t *testing.T) {
	src := `
module dead(input a, b, output y);
  wire unused;
  assign unused = a ^ b;
  assign y = a & b;
endmodule`
	res := synthSrc(t, src, "dead", Options{})
	if got := res.Netlist.NumGates(); got != 1 {
		t.Errorf("gates=%d, want 1 (XOR swept)", got)
	}
}

func TestSynthConstantCaseArmPruned(t *testing.T) {
	// op is a parameter, so the case collapses at elaboration time.
	h := newHarness(t, `
module cc #(parameter OP = 2)(input [3:0] a, b, output reg [3:0] y);
  always @(*) begin
    case (OP)
      0: y = a + b;
      1: y = a - b;
      2: y = a & b;
      default: y = a | b;
    endcase
  end
endmodule`, "cc", Options{})
	h.in("a", 0b1100)
	h.in("b", 0b1010)
	h.eval()
	if got := h.out("y"); got != 0b1000 {
		t.Errorf("y=%04b, want 1000", got)
	}
}

func TestSynthUnknownModuleError(t *testing.T) {
	sf, _ := verilog.Parse("t.v", `module t(input a, output y); ghost u (.a(a), .y(y)); endmodule`)
	if _, err := Synthesize(sf, "t", Options{}); err == nil || !strings.Contains(err.Error(), "unknown module") {
		t.Errorf("expected unknown-module error, got %v", err)
	}
}

func TestSynthPortWidthExtension(t *testing.T) {
	// Narrow expression connected to wider port zero-extends.
	h := newHarness(t, `
module top(input [1:0] a, output [3:0] y);
  wide u (.in({2'b00, a}), .out(y));
endmodule
module wide(input [3:0] in, output [3:0] out);
  assign out = in + 4'd1;
endmodule`, "top", Options{})
	h.in("a", 3)
	h.eval()
	if got := h.out("y"); got != 4 {
		t.Errorf("y=%d, want 4", got)
	}
}

func TestSynthSupplyNets(t *testing.T) {
	h := newHarness(t, `
module sup(input a, output y);
  supply1 vdd;
  supply0 gnd;
  assign y = (a & vdd) | gnd;
endmodule`, "sup", Options{})
	h.in("a", 1)
	h.eval()
	if h.out("y") != 1 {
		t.Error("supply nets broken")
	}
}

func TestSynthLsbOffsetVectors(t *testing.T) {
	h := newHarness(t, `
module off(input [11:4] a, output [11:4] y, output b);
  assign y = a + 8'd1;
  assign b = a[4];
endmodule`, "off", Options{})
	// Port bits are named with declared indices.
	if h.nl.PI("a[4]") < 0 || h.nl.PI("a[11]") < 0 {
		t.Fatalf("PI names: %v", h.nl.PINames)
	}
	// Bit names use declared indices (4..11), so set lanes manually.
	for i := 4; i <= 11; i++ {
		h.s.SetInputScalar(h.nl.PI(bitPortName("a", i)), sim.Logic(0))
	}
	h.s.SetInputScalar(h.nl.PI("a[4]"), sim.L1)
	h.eval()
	if got := h.s.Value(h.nl.PO("y[4]")).Lane(0); got != sim.L0 {
		t.Errorf("y[4]=%v, want 0 (1+1 carries)", got)
	}
	if got := h.s.Value(h.nl.PO("y[5]")).Lane(0); got != sim.L1 {
		t.Errorf("y[5]=%v, want 1", got)
	}
	if got := h.s.Value(h.nl.PO("b")).Lane(0); got != sim.L1 {
		t.Errorf("b=%v, want 1 (a[4])", got)
	}
}

func TestSynthSequentialPipelineDepth(t *testing.T) {
	res := synthSrc(t, `
module pipe(input clk, input [3:0] d, output [3:0] q);
  reg [3:0] s1, s2, s3;
  always @(posedge clk) begin
    s1 <= d;
    s2 <= s1;
    s3 <= s2;
  end
  assign q = s3;
endmodule`, "pipe", Options{})
	if got := len(res.Netlist.DFFs); got != 12 {
		t.Errorf("DFFs=%d, want 12", got)
	}
	if got := res.Netlist.SequentialDepth(); got != 3 {
		t.Errorf("sequential depth=%d, want 3", got)
	}
}

func TestSynthXZLiteralRejectedOutsideCase(t *testing.T) {
	sf, _ := verilog.Parse("t.v", `module xz(output y); assign y = 1'bx; endmodule`)
	if _, err := Synthesize(sf, "xz", Options{}); err == nil {
		t.Error("expected error for x literal in assign")
	}
}

func TestSynthMixedAssignStylesRejected(t *testing.T) {
	sf, _ := verilog.Parse("t.v", `
module mx(input clk, a, output reg q);
  always @(posedge clk) begin
    q = a;
    q <= a;
  end
endmodule`)
	if _, err := Synthesize(sf, "mx", Options{}); err == nil || !strings.Contains(err.Error(), "blocking") {
		t.Errorf("expected mixed-style error, got %v", err)
	}
}

func TestSynthNonblockingInCombRejected(t *testing.T) {
	sf, _ := verilog.Parse("t.v", `
module nb(input a, output reg q);
  always @(*) q <= a;
endmodule`)
	if _, err := Synthesize(sf, "nb", Options{}); err == nil {
		t.Error("expected error for nonblocking in combinational block")
	}
}

func TestSynthDivModConstant(t *testing.T) {
	h := newHarness(t, `
module dm(input [5:0] a, output [5:0] q, r);
  localparam D = 52 / 8;
  localparam M = 52 % 8;
  assign q = a + D;
  assign r = a + M;
endmodule`, "dm", Options{})
	h.in("a", 0)
	h.eval()
	if h.out("q") != 6 || h.out("r") != 4 {
		t.Errorf("q=%d r=%d, want 6 4", h.out("q"), h.out("r"))
	}
}

func TestSynthDefaultBeforeIfPattern(t *testing.T) {
	h := newHarness(t, `
module dbi(input c, input [3:0] a, output reg [3:0] y);
  always @(*) begin
    y = 4'd0;
    if (c) y = a;
  end
endmodule`, "dbi", Options{})
	h.in("c", 0)
	h.in("a", 9)
	h.eval()
	if h.out("y") != 0 {
		t.Errorf("c=0: y=%d, want 0", h.out("y"))
	}
	h.in("c", 1)
	h.eval()
	if h.out("y") != 9 {
		t.Errorf("c=1: y=%d, want 9", h.out("y"))
	}
}
