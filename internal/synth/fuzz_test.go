package synth

import (
	"testing"
	"time"

	"factor/internal/verilog"
)

// FuzzSynthesize drives the whole RTL frontend: parse, then elaborate
// the first module. Synthesize must return an error on anything it
// cannot handle — a panic or a hang is a bug (the elaborator runs
// inside long-lived pipeline workers, so a crash would take out a whole
// multi-MUT run).
func FuzzSynthesize(f *testing.F) {
	seeds := []string{
		"module m(input a, output y); assign y = a; endmodule",
		"module m(input [7:0] a, b, output [8:0] y); assign y = a + b; endmodule",
		"module m(input clk, rst, d, output reg q); always @(posedge clk) if (rst) q <= 0; else q <= d; endmodule",
		`module m(input [3:0] s, output reg [1:0] y);
		  always @(*) case (s) 4'b0001: y = 0; default: y = 2; endcase
		endmodule`,
		"module top(input a, output y); sub u(.x(a), .y(y)); endmodule module sub(input x, output y); assign y = ~x; endmodule",
		"module m #(parameter W = 4) (input [W-1:0] a, output [W-1:0] y); assign y = a << 1; endmodule",
		// Combinational cycle: must come back as an error, not a panic.
		"module m(input a, output y); wire b, c; assign b = c & a; assign c = b | a; assign y = c; endmodule",
		// Multiple drivers.
		"module m(input a, output y); assign y = a; assign y = ~a; endmodule",
		// Recursive instantiation: bounded by the hierarchy-depth guard.
		"module m(input a); m u(.a(a)); endmodule",
		// Division by a non-constant is rejected.
		"module m(input [3:0] a, b, output [3:0] y); assign y = a / b; endmodule",
		"module m(output y); assign y = 1'bx; endmodule",
		"module m(input clk, output reg [3:0] c); always @(posedge clk) c <= c + 1; endmodule",
	}
	for _, seed := range seeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		sf, err := verilog.Parse("fuzz.v", src)
		if err != nil || len(sf.Modules) == 0 {
			return
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			// A small loop budget keeps fuzz iterations fast; the bound
			// is a documented elaboration limit, not a correctness knob.
			res, err := Synthesize(sf, sf.Modules[0].Name, Options{MaxLoopIterations: 64})
			if err == nil {
				if verr := res.Netlist.Validate(); verr != nil {
					t.Errorf("Synthesize produced an invalid netlist: %v", verr)
				}
			}
		}()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("synthesis hang on %d-byte input: %.80q", len(src), src)
		}
	})
}
