package synth

import (
	"factor/internal/netlist"
)

// Optimize rewrites a netlist with constant propagation, local boolean
// simplification, structural hashing (common-subexpression sharing) and
// a dead-logic sweep, repeating until the gate count stabilizes. This
// is the redundancy-removal role the FACTOR paper delegates to the
// synthesis tool: extracted environments contain every possible source
// and propagation path, and the redundant ones are eliminated here.
//
// Note on unknowns: like production synthesis tools, the rewrites are
// valid over binary values; identities such as AND(x, NOT x) = 0 are
// applied even though a 3-valued simulation of the original netlist
// could produce X where the optimized netlist produces a constant.
func Optimize(n *netlist.Netlist) *netlist.Netlist {
	prev := -1
	for pass := 0; pass < 16; pass++ {
		n = rebuild(n)
		if g := n.NumGates(); g == prev {
			break
		} else {
			prev = g
		}
	}
	return n
}

// gateKey identifies a gate for structural hashing.
type gateKey struct {
	kind       netlist.GateKind
	f0, f1, f2 int
}

type rebuilder struct {
	out  *netlist.Netlist
	hash map[gateKey]int
	zero int
	one  int
	// curScope tags gates created while rewriting one source gate with
	// that gate's provenance.
	curScope string
}

func (r *rebuilder) isConst0(g int) bool { return r.out.Gates[g].Kind == netlist.Const0 }
func (r *rebuilder) isConst1(g int) bool { return r.out.Gates[g].Kind == netlist.Const1 }

// notOf reports whether gate a is the complement of gate b.
func (r *rebuilder) notOf(a, b int) bool {
	ga, gb := r.out.Gates[a], r.out.Gates[b]
	if ga.Kind == netlist.Not && ga.Fanin[0] == b {
		return true
	}
	if gb.Kind == netlist.Not && gb.Fanin[0] == a {
		return true
	}
	if ga.Kind == netlist.Const0 && gb.Kind == netlist.Const1 {
		return true
	}
	if ga.Kind == netlist.Const1 && gb.Kind == netlist.Const0 {
		return true
	}
	return false
}

// gate creates (or reuses) a simplified gate in the output netlist.
func (r *rebuilder) gate(kind netlist.GateKind, fanin ...int) int {
	switch kind {
	case netlist.Buf:
		return fanin[0]
	case netlist.Not:
		x := fanin[0]
		if r.isConst0(x) {
			return r.one
		}
		if r.isConst1(x) {
			return r.zero
		}
		if g := r.out.Gates[x]; g.Kind == netlist.Not {
			return g.Fanin[0]
		}
	case netlist.And:
		a, b := fanin[0], fanin[1]
		if r.isConst0(a) || r.isConst0(b) {
			return r.zero
		}
		if r.isConst1(a) {
			return b
		}
		if r.isConst1(b) {
			return a
		}
		if a == b {
			return a
		}
		if r.notOf(a, b) {
			return r.zero
		}
	case netlist.Or:
		a, b := fanin[0], fanin[1]
		if r.isConst1(a) || r.isConst1(b) {
			return r.one
		}
		if r.isConst0(a) {
			return b
		}
		if r.isConst0(b) {
			return a
		}
		if a == b {
			return a
		}
		if r.notOf(a, b) {
			return r.one
		}
	case netlist.Nand:
		a, b := fanin[0], fanin[1]
		if r.isConst0(a) || r.isConst0(b) {
			return r.one
		}
		if r.isConst1(a) {
			return r.gate(netlist.Not, b)
		}
		if r.isConst1(b) {
			return r.gate(netlist.Not, a)
		}
		if a == b {
			return r.gate(netlist.Not, a)
		}
		if r.notOf(a, b) {
			return r.one
		}
	case netlist.Nor:
		a, b := fanin[0], fanin[1]
		if r.isConst1(a) || r.isConst1(b) {
			return r.zero
		}
		if r.isConst0(a) {
			return r.gate(netlist.Not, b)
		}
		if r.isConst0(b) {
			return r.gate(netlist.Not, a)
		}
		if a == b {
			return r.gate(netlist.Not, a)
		}
		if r.notOf(a, b) {
			return r.zero
		}
	case netlist.Xor:
		a, b := fanin[0], fanin[1]
		if r.isConst0(a) {
			return b
		}
		if r.isConst0(b) {
			return a
		}
		if r.isConst1(a) {
			return r.gate(netlist.Not, b)
		}
		if r.isConst1(b) {
			return r.gate(netlist.Not, a)
		}
		if a == b {
			return r.zero
		}
		if r.notOf(a, b) {
			return r.one
		}
	case netlist.Xnor:
		a, b := fanin[0], fanin[1]
		if r.isConst0(a) {
			return r.gate(netlist.Not, b)
		}
		if r.isConst0(b) {
			return r.gate(netlist.Not, a)
		}
		if r.isConst1(a) {
			return b
		}
		if r.isConst1(b) {
			return a
		}
		if a == b {
			return r.one
		}
		if r.notOf(a, b) {
			return r.zero
		}
	case netlist.Mux:
		sel, d0, d1 := fanin[0], fanin[1], fanin[2]
		if r.isConst0(sel) {
			return d0
		}
		if r.isConst1(sel) {
			return d1
		}
		if d0 == d1 {
			return d0
		}
		if r.isConst0(d0) && r.isConst1(d1) {
			return sel
		}
		if r.isConst1(d0) && r.isConst0(d1) {
			return r.gate(netlist.Not, sel)
		}
		if r.isConst0(d0) {
			return r.gate(netlist.And, sel, d1)
		}
		if r.isConst0(d1) {
			return r.gate(netlist.And, r.gate(netlist.Not, sel), d0)
		}
		if r.isConst1(d0) {
			return r.gate(netlist.Or, r.gate(netlist.Not, sel), d1)
		}
		if r.isConst1(d1) {
			return r.gate(netlist.Or, sel, d0)
		}
		if r.notOf(d0, d1) {
			// Mux(s, x, ~x) = s XNOR ... careful: d1 when s=1.
			// If d1 == Not(d0): result = s ? ~d0 : d0 = s XOR d0.
			if g := r.out.Gates[d1]; g.Kind == netlist.Not && g.Fanin[0] == d0 {
				return r.gate(netlist.Xor, sel, d0)
			}
			if g := r.out.Gates[d0]; g.Kind == netlist.Not && g.Fanin[0] == d1 {
				return r.gate(netlist.Xnor, sel, d1)
			}
		}
	}
	// Hash-cons. Commutative kinds normalize fanin order.
	key := gateKey{kind: kind, f0: -1, f1: -1, f2: -1}
	f := append([]int(nil), fanin...)
	switch kind {
	case netlist.And, netlist.Or, netlist.Nand, netlist.Nor, netlist.Xor, netlist.Xnor:
		if f[0] > f[1] {
			f[0], f[1] = f[1], f[0]
		}
	}
	if len(f) > 0 {
		key.f0 = f[0]
	}
	if len(f) > 1 {
		key.f1 = f[1]
	}
	if len(f) > 2 {
		key.f2 = f[2]
	}
	if kind != netlist.DFF && kind != netlist.Input {
		if id, ok := r.hash[key]; ok {
			return id
		}
	}
	id := r.out.AddGate(kind, fanin...)
	r.out.Gates[id].Scope = r.curScope
	if kind != netlist.DFF && kind != netlist.Input {
		r.hash[key] = id
	}
	return id
}

// liveSet marks gates reachable backward from primary outputs, chasing
// through DFF D-inputs.
func liveSet(n *netlist.Netlist) []bool {
	live := make([]bool, len(n.Gates))
	var stack []int
	push := func(id int) {
		if !live[id] {
			live[id] = true
			stack = append(stack, id)
		}
	}
	for _, po := range n.POs {
		push(po)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, f := range n.Gates[id].Fanin {
			push(f)
		}
	}
	return live
}

// rebuild performs one simplify-and-sweep pass.
func rebuild(n *netlist.Netlist) *netlist.Netlist {
	live := liveSet(n)
	r := &rebuilder{out: netlist.New(n.Name), hash: map[gateKey]int{}}
	r.zero = r.out.AddGate(netlist.Const0)
	r.one = r.out.AddGate(netlist.Const1)

	remap := make([]int, len(n.Gates))
	for i := range remap {
		remap[i] = -1
	}
	// All PIs survive (the module interface is fixed), in order.
	for i, pi := range n.PIs {
		remap[pi] = r.out.AddInput(n.PINames[i])
	}
	// Live DFFs are created up front so combinational logic can read
	// them; their D fanins are wired after the sweep.
	for _, f := range n.DFFs {
		if !live[f] {
			continue
		}
		id := r.out.AddGate(netlist.DFF, r.zero)
		r.out.Gates[id].Name = n.Gates[f].Name
		r.out.Gates[id].Scope = n.Gates[f].Scope
		remap[f] = id
	}
	// Combinational logic in topological order.
	for _, id := range n.TopoOrder() {
		if !live[id] || remap[id] >= 0 {
			continue
		}
		g := n.Gates[id]
		switch g.Kind {
		case netlist.Const0:
			remap[id] = r.zero
		case netlist.Const1:
			remap[id] = r.one
		case netlist.Input, netlist.DFF:
			// Already mapped (or dead).
		default:
			fanin := make([]int, len(g.Fanin))
			for i, f := range g.Fanin {
				fanin[i] = remap[f]
			}
			r.curScope = g.Scope
			nid := r.gate(g.Kind, fanin...)
			if r.out.Gates[nid].Name == "" {
				r.out.Gates[nid].Name = g.Name
			}
			remap[id] = nid
		}
	}
	// Close DFF feedback.
	for _, f := range n.DFFs {
		if remap[f] < 0 {
			continue
		}
		d := remap[n.Gates[f].Fanin[0]]
		r.out.SetFanin(remap[f], 0, d)
	}
	// Outputs.
	for i, po := range n.POs {
		r.out.AddOutput(n.PONames[i], remap[po])
	}
	return r.out
}
