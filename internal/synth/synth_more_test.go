package synth

import (
	"strings"
	"testing"

	"factor/internal/verilog"
)

func synthErr(t *testing.T, src, top string) error {
	t.Helper()
	sf, err := verilog.Parse("t.v", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Synthesize(sf, top, Options{})
	return err
}

func TestSynthCasexWildcards(t *testing.T) {
	h := newHarness(t, `
module cx(input [3:0] v, output reg hit);
  always @(*) begin
    casex (v)
      4'b1xx1: hit = 1'b1;
      default: hit = 1'b0;
    endcase
  end
endmodule`, "cx", Options{})
	cases := map[uint64]uint64{
		0b1001: 1, 0b1111: 1, 0b1011: 1, 0b0001: 0, 0b1000: 0,
	}
	for v, want := range cases {
		h.in("v", v)
		h.eval()
		if got := h.out("hit"); got != want {
			t.Errorf("v=%04b: hit=%d, want %d", v, got, want)
		}
	}
}

func TestSynthBufNotMultipleOutputs(t *testing.T) {
	h := newHarness(t, `
module bn(input a, output y1, y2, z1, z2);
  buf (y1, y2, a);
  not (z1, z2, a);
endmodule`, "bn", Options{})
	h.in("a", 1)
	h.eval()
	if h.out("y1") != 1 || h.out("y2") != 1 || h.out("z1") != 0 || h.out("z2") != 0 {
		t.Error("multi-output buf/not broken")
	}
}

func TestSynthArithmeticShiftRightVariable(t *testing.T) {
	h := newHarness(t, `
module av(input [7:0] a, input [2:0] n, output [7:0] y);
  assign y = a >>> n;
endmodule`, "av", Options{})
	const a = 0b10010000 // negative as int8
	h.in("a", a)
	for n := uint64(0); n < 8; n++ {
		h.in("n", n)
		h.eval()
		signed := int64(a) - 256 // int8 value of the pattern
		want := uint64(signed>>n) & 0xFF
		if got := h.out("y"); got != want {
			t.Errorf("asr %d: %08b, want %08b", n, got, want)
		}
	}
}

func TestSynthReductionNandXnor(t *testing.T) {
	h := newHarness(t, `
module rn(input [2:0] v, output na, xn);
  assign na = ~&v;
  assign xn = ~^v;
endmodule`, "rn", Options{})
	for v := uint64(0); v < 8; v++ {
		h.in("v", v)
		h.eval()
		ones := 0
		for i := uint(0); i < 3; i++ {
			ones += int(v>>i) & 1
		}
		wantNa := uint64(1)
		if v == 7 {
			wantNa = 0
		}
		wantXn := uint64(1 - ones%2)
		if h.out("na") != wantNa || h.out("xn") != wantXn {
			t.Errorf("v=%03b: na=%d xn=%d, want %d %d", v, h.out("na"), h.out("xn"), wantNa, wantXn)
		}
	}
}

func TestSynthLogicalOpsOnVectors(t *testing.T) {
	h := newHarness(t, `
module lo(input [3:0] a, b, output y, z, w);
  assign y = a && b;
  assign z = a || b;
  assign w = !a;
endmodule`, "lo", Options{})
	h.in("a", 0)
	h.in("b", 5)
	h.eval()
	if h.out("y") != 0 || h.out("z") != 1 || h.out("w") != 1 {
		t.Error("logical ops broken for a=0")
	}
	h.in("a", 2)
	h.eval()
	if h.out("y") != 1 || h.out("w") != 0 {
		t.Error("logical ops broken for a=2")
	}
}

func TestSynthConstantConditionPruning(t *testing.T) {
	// A parameterized if collapses to one branch with zero mux gates.
	res := synthSrc(t, `
module cp #(parameter EN = 1)(input [3:0] a, output [3:0] y);
  reg [3:0] t;
  always @(*) begin
    if (EN != 0)
      t = a + 4'd1;
    else
      t = a - 4'd1;
  end
  assign y = t;
endmodule`, "cp", Options{})
	for _, g := range res.Netlist.Gates {
		if g.Kind.String() == "mux" {
			t.Error("constant condition produced a mux")
		}
	}
}

func TestSynthErrorPaths(t *testing.T) {
	cases := []struct {
		name, src, top, want string
	}{
		{"unknown top", "module a; endmodule", "b", "not found"},
		{"inout", "module m(inout x); endmodule", "m", "inout"},
		{"64bit limit", "module m(input [64:0] a, output y); assign y = a[0]; endmodule", "m", "wider than 64"},
		{"descending range", "module m(input [0:7] a, output y); assign y = a[0]; endmodule", "m", "descending"},
		{"div by zero", "module m(output [3:0] y); assign y = 8 / 0; endmodule", "m", "zero"},
		{"non-const div", "module m(input [3:0] a, b, output [3:0] y); assign y = a / b; endmodule", "m", "constant"},
		{"bad repl", "module m(input a, output y); wire [7:0] t; assign t = {0{a}}; assign y = t[0]; endmodule", "m", "replication"},
		{"undeclared", "module m(output y); assign y = ghost; endmodule", "m", "undeclared"},
		{"bad bit select", "module m(input [3:0] a, output y); assign y = a[9]; endmodule", "m", "out of range"},
		{"bad part select", "module m(input [3:0] a, output [7:0] y); assign y = a[9:2]; endmodule", "m", "out of range"},
		{"unknown function", "module m(input a, output y); assign y = f(a); endmodule", "m", "unknown function"},
		{"arg count", `module m(input a, output y);
  function g; input p, q; begin g = p & q; end endfunction
  assign y = g(a);
endmodule`, "m", "expects 2 arguments"},
		{"too many conns", `module m(input a, output y); s u (a, y, a); endmodule
module s(input p, output q); assign q = p; endmodule`, "m", "too many"},
		{"no port", `module m(input a, output y); s u (.zz(a)); endmodule
module s(input p, output q); assign q = p; endmodule`, "m", "no port"},
		{"xz in case label", `module m(input [1:0] s, output reg y);
  always @(*) begin
    case (s)
      2'b1x: y = 1'b1;
      default: y = 1'b0;
    endcase
  end
endmodule`, "m", "never match"},
		{"x in casez", `module m(input [1:0] s, output reg y);
  always @(*) begin
    casez (s)
      2'b1x: y = 1'b1;
      default: y = 1'b0;
    endcase
  end
endmodule`, "m", "x bits in casez"},
		{"variable lvalue index", `module m(input [3:0] a, input [1:0] i, output reg [3:0] y);
  always @(*) begin
    y = 4'd0;
    y[i] = a[0];
  end
endmodule`, "m", "variable bit select"},
		{"runaway loop", `module m(input a, output reg y);
  integer i;
  always @(*) begin
    y = a;
    i = 0;
    while (i < 1) begin
      y = ~y;
    end
  end
endmodule`, "m", "iterations"},
	}
	for _, c := range cases {
		err := synthErr(t, c.src, c.top)
		if err == nil {
			t.Errorf("%s: expected error containing %q", c.name, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.want)
		}
	}
}

func TestSynthRecursionGuard(t *testing.T) {
	err := synthErr(t, `
module a(input x, output y); b u (.x(x), .y(y)); endmodule
module b(input x, output y); a u (.x(x), .y(y)); endmodule`, "a")
	if err == nil || !strings.Contains(err.Error(), "deeper") {
		t.Errorf("expected hierarchy depth error, got %v", err)
	}
}

func TestSynthTernaryMultiBitCondition(t *testing.T) {
	h := newHarness(t, `
module tm(input [3:0] c, input [3:0] a, b, output [3:0] y);
  assign y = c ? a : b;
endmodule`, "tm", Options{})
	h.in("c", 0)
	h.in("a", 3)
	h.in("b", 9)
	h.eval()
	if h.out("y") != 9 {
		t.Error("c=0 should select b")
	}
	h.in("c", 8) // any nonzero bit
	h.eval()
	if h.out("y") != 3 {
		t.Error("c=8 should select a")
	}
}

func TestSynthCaseWithNonConstLabel(t *testing.T) {
	h := newHarness(t, `
module nc(input [1:0] s, m, input a, b, output reg y);
  always @(*) begin
    case (s)
      m: y = a;
      default: y = b;
    endcase
  end
endmodule`, "nc", Options{})
	h.in("s", 2)
	h.in("m", 2)
	h.in("a", 1)
	h.in("b", 0)
	h.eval()
	if h.out("y") != 1 {
		t.Error("matching dynamic label should select a")
	}
	h.in("m", 3)
	h.eval()
	if h.out("y") != 0 {
		t.Error("non-matching dynamic label should select b")
	}
}

func TestSynthConcatLValueContinuous(t *testing.T) {
	h := newHarness(t, `
module cl(input [7:0] a, output [3:0] hi, lo);
  assign {hi, lo} = a;
endmodule`, "cl", Options{})
	h.in("a", 0xA5)
	h.eval()
	if h.out("hi") != 0xA || h.out("lo") != 0x5 {
		t.Errorf("hi=%x lo=%x", h.out("hi"), h.out("lo"))
	}
}

func TestSynthWarningsSorted(t *testing.T) {
	res := synthSrc(t, `
module ws(input a, output y);
  wire u1, u2;
  assign y = a & u1 & u2;
endmodule`, "ws", Options{})
	lines := SortedWarnings(res.Warnings)
	if len(lines) != 2 {
		t.Fatalf("warnings: %v", lines)
	}
	if lines[0] > lines[1] {
		t.Error("warnings not sorted")
	}
}
