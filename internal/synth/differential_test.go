package synth

import (
	"fmt"
	"math/rand"
	"testing"

	"factor/internal/sim"
	"factor/internal/verilog"
)

// Differential testing of expression synthesis: random expressions are
// synthesized to gates and simulated, and the results are compared
// against an independent word-level evaluator implementing the
// documented width semantics (operands zero-extended to the wider
// operand, results truncated/zero-extended at assignment, unsigned
// comparisons, arithmetic shift filling with the left operand's top
// bit).

// exprGen builds random expressions over a fixed set of input signals.
type exprGen struct {
	rng  *rand.Rand
	sigs map[string]int // name -> width
}

func (g *exprGen) expr(depth int) verilog.Expr {
	if depth <= 0 || g.rng.Intn(5) == 0 {
		if g.rng.Intn(3) == 0 {
			w := 1 + g.rng.Intn(8)
			return &verilog.Number{
				Width: w, Sized: true,
				Value: g.rng.Uint64() & ((1 << uint(w)) - 1),
			}
		}
		return &verilog.Ident{Name: g.pickSig()}
	}
	switch g.rng.Intn(12) {
	case 0:
		ops := []verilog.UnaryOp{
			verilog.UnaryMinus, verilog.UnaryNot, verilog.UnaryBitNot,
			verilog.UnaryAnd, verilog.UnaryOr, verilog.UnaryXor,
			verilog.UnaryNand, verilog.UnaryNor, verilog.UnaryXnor,
		}
		return &verilog.UnaryExpr{Op: ops[g.rng.Intn(len(ops))], X: g.expr(depth - 1)}
	case 1, 2, 3, 4, 5:
		ops := []verilog.BinaryOp{
			verilog.BinAdd, verilog.BinSub, verilog.BinMul,
			verilog.BinAnd, verilog.BinOr, verilog.BinXor, verilog.BinXnor,
			verilog.BinLogAnd, verilog.BinLogOr,
			verilog.BinEq, verilog.BinNeq,
			verilog.BinLt, verilog.BinLe, verilog.BinGt, verilog.BinGe,
			verilog.BinShl, verilog.BinShr, verilog.BinAShr,
		}
		return &verilog.BinaryExpr{Op: ops[g.rng.Intn(len(ops))], X: g.expr(depth - 1), Y: g.expr(depth - 1)}
	case 6:
		return &verilog.CondExpr{Cond: g.expr(depth - 1), Then: g.expr(depth - 1), Else: g.expr(depth - 1)}
	case 7:
		name := g.pickSig()
		w := g.sigs[name]
		return &verilog.IndexExpr{
			X:     &verilog.Ident{Name: name},
			Index: &verilog.Number{Width: 4, Sized: true, Value: uint64(g.rng.Intn(w))},
		}
	case 8:
		name := g.pickSig()
		w := g.sigs[name]
		lo := g.rng.Intn(w)
		hi := lo + g.rng.Intn(w-lo)
		return &verilog.RangeExpr{
			X:   &verilog.Ident{Name: name},
			MSB: &verilog.Number{Width: 4, Sized: true, Value: uint64(hi)},
			LSB: &verilog.Number{Width: 4, Sized: true, Value: uint64(lo)},
		}
	case 9:
		parts := make([]verilog.Expr, 1+g.rng.Intn(3))
		for i := range parts {
			parts[i] = g.expr(depth - 1)
		}
		return &verilog.ConcatExpr{Parts: parts}
	case 10:
		return &verilog.ReplExpr{
			Count: &verilog.Number{Width: 3, Sized: true, Value: uint64(1 + g.rng.Intn(3))},
			X:     g.expr(depth - 1),
		}
	default:
		return &verilog.Ident{Name: g.pickSig()}
	}
}

func (g *exprGen) pickSig() string {
	names := []string{"p", "q", "r", "s"}
	return names[g.rng.Intn(len(names))]
}

// evalRef evaluates an expression over concrete values with the
// reference semantics, returning (value, width). Widths are capped at
// 48 bits by construction (max depth and operand widths) so uint64
// arithmetic suffices.
func evalRef(e verilog.Expr, env map[string]uint64, widths map[string]int) (uint64, int, error) {
	mask := func(v uint64, w int) uint64 {
		if w >= 64 {
			return v
		}
		return v & ((uint64(1) << uint(w)) - 1)
	}
	b1 := func(v bool) (uint64, int, error) {
		if v {
			return 1, 1, nil
		}
		return 0, 1, nil
	}
	switch v := e.(type) {
	case *verilog.Ident:
		return env[v.Name], widths[v.Name], nil
	case *verilog.Number:
		return v.Value, v.Width, nil
	case *verilog.UnaryExpr:
		x, w, err := evalRef(v.X, env, widths)
		if err != nil {
			return 0, 0, err
		}
		full := mask(^uint64(0), w)
		switch v.Op {
		case verilog.UnaryPlus:
			return x, w, nil
		case verilog.UnaryMinus:
			return mask(-x, w), w, nil
		case verilog.UnaryBitNot:
			return mask(^x, w), w, nil
		case verilog.UnaryNot:
			return b1(x == 0)
		case verilog.UnaryAnd:
			return b1(x == full)
		case verilog.UnaryNand:
			return b1(x != full)
		case verilog.UnaryOr:
			return b1(x != 0)
		case verilog.UnaryNor:
			return b1(x == 0)
		case verilog.UnaryXor:
			return b1(popcount(x)%2 == 1)
		case verilog.UnaryXnor:
			return b1(popcount(x)%2 == 0)
		}
	case *verilog.BinaryExpr:
		a, wa, err := evalRef(v.X, env, widths)
		if err != nil {
			return 0, 0, err
		}
		b, wb, err := evalRef(v.Y, env, widths)
		if err != nil {
			return 0, 0, err
		}
		w := wa
		if wb > w {
			w = wb
		}
		switch v.Op {
		case verilog.BinAdd:
			return mask(a+b, w), w, nil
		case verilog.BinSub:
			return mask(a-b, w), w, nil
		case verilog.BinMul:
			mw := wa + wb
			if mw > 64 {
				mw = 64
			}
			return mask(a*b, mw), mw, nil
		case verilog.BinAnd:
			return a & b, w, nil
		case verilog.BinOr:
			return a | b, w, nil
		case verilog.BinXor:
			return a ^ b, w, nil
		case verilog.BinXnor:
			return mask(^(a ^ b), w), w, nil
		case verilog.BinLogAnd:
			return b1(a != 0 && b != 0)
		case verilog.BinLogOr:
			return b1(a != 0 || b != 0)
		case verilog.BinEq:
			return b1(a == b)
		case verilog.BinNeq:
			return b1(a != b)
		case verilog.BinLt:
			return b1(a < b)
		case verilog.BinLe:
			return b1(a <= b)
		case verilog.BinGt:
			return b1(a > b)
		case verilog.BinGe:
			return b1(a >= b)
		case verilog.BinShl:
			if b >= 64 {
				return 0, wa, nil
			}
			return mask(a<<b, wa), wa, nil
		case verilog.BinShr:
			if b >= 64 {
				return 0, wa, nil
			}
			return a >> b, wa, nil
		case verilog.BinAShr:
			sign := (a >> uint(wa-1)) & 1
			if b >= uint64(wa) {
				if sign == 1 {
					return mask(^uint64(0), wa), wa, nil
				}
				return 0, wa, nil
			}
			r := a >> b
			if sign == 1 {
				for i := uint64(0); i < b; i++ {
					r |= 1 << (uint64(wa) - 1 - i)
				}
			}
			return mask(r, wa), wa, nil
		}
	case *verilog.CondExpr:
		c, _, err := evalRef(v.Cond, env, widths)
		if err != nil {
			return 0, 0, err
		}
		a, wa, err := evalRef(v.Then, env, widths)
		if err != nil {
			return 0, 0, err
		}
		b, wb, err := evalRef(v.Else, env, widths)
		if err != nil {
			return 0, 0, err
		}
		w := wa
		if wb > w {
			w = wb
		}
		if c != 0 {
			return a, w, nil
		}
		return b, w, nil
	case *verilog.IndexExpr:
		x, _, err := evalRef(v.X, env, widths)
		if err != nil {
			return 0, 0, err
		}
		idx, _, err := evalRef(v.Index, env, widths)
		if err != nil {
			return 0, 0, err
		}
		return (x >> idx) & 1, 1, nil
	case *verilog.RangeExpr:
		x, _, err := evalRef(v.X, env, widths)
		if err != nil {
			return 0, 0, err
		}
		hi, _, err := evalRef(v.MSB, env, widths)
		if err != nil {
			return 0, 0, err
		}
		lo, _, err := evalRef(v.LSB, env, widths)
		if err != nil {
			return 0, 0, err
		}
		w := int(hi-lo) + 1
		return mask(x>>lo, w), w, nil
	case *verilog.ConcatExpr:
		var out uint64
		w := 0
		// MSB-first: earlier parts end up in higher bits.
		for _, p := range v.Parts {
			pv, pw, err := evalRef(p, env, widths)
			if err != nil {
				return 0, 0, err
			}
			out = out<<uint(pw) | pv
			w += pw
		}
		return mask(out, w), w, nil
	case *verilog.ReplExpr:
		count, _, err := evalRef(v.Count, env, widths)
		if err != nil {
			return 0, 0, err
		}
		x, xw, err := evalRef(v.X, env, widths)
		if err != nil {
			return 0, 0, err
		}
		var out uint64
		w := 0
		for i := uint64(0); i < count; i++ {
			out = out<<uint(xw) | x
			w += xw
		}
		return mask(out, w), w, nil
	}
	return 0, 0, fmt.Errorf("unsupported expression %T", e)
}

func TestDifferentialExpressionSynthesis(t *testing.T) {
	widths := map[string]int{"p": 3, "q": 5, "r": 8, "s": 1}
	const outW = 16
	rng := rand.New(rand.NewSource(0xFAC7)) // deterministic

	for trial := 0; trial < 300; trial++ {
		gen := &exprGen{rng: rng, sigs: widths}
		e := gen.expr(4)
		// Reference width check: expressions wider than 64 bits are
		// outside the synthesizable subset; skip those rare trees.
		if _, w, err := evalRef(e, map[string]uint64{"p": 0, "q": 0, "r": 0, "s": 0}, widths); err != nil || w > 64 {
			continue
		}
		src := fmt.Sprintf(`module duv(input [2:0] p, input [4:0] q, input [7:0] r, input s, output [%d:0] y);
  assign y = %s;
endmodule`, outW-1, verilog.DescribeExpr(e))
		sf, err := verilog.Parse("duv.v", src)
		if err != nil {
			t.Fatalf("trial %d: generated source does not parse: %v\n%s", trial, err, src)
		}
		res, err := Synthesize(sf, "duv", Options{})
		if err != nil {
			t.Fatalf("trial %d: synthesis failed: %v\n%s", trial, err, src)
		}
		s := sim.New(res.Netlist)

		for pat := 0; pat < 16; pat++ {
			env := map[string]uint64{}
			for name, w := range widths {
				env[name] = rng.Uint64() & ((1 << uint(w)) - 1)
			}
			for name, w := range widths {
				for i := 0; i < w; i++ {
					bit := name
					if w > 1 {
						bit = fmt.Sprintf("%s[%d]", name, i)
					}
					pi := res.Netlist.PI(bit)
					if pi < 0 {
						t.Fatalf("trial %d: missing PI %s", trial, bit)
					}
					s.SetInputScalar(pi, sim.Logic((env[name]>>uint(i))&1))
				}
			}
			s.Eval()
			var got uint64
			for i := 0; i < outW; i++ {
				v := s.Value(res.Netlist.PO(fmt.Sprintf("y[%d]", i))).Lane(0)
				if v == sim.LX {
					t.Fatalf("trial %d: y[%d] is X for binary inputs\n%s", trial, i, src)
				}
				got |= uint64(v) << uint(i)
			}
			refV, refW, err := evalRef(e, env, widths)
			if err != nil {
				t.Fatal(err)
			}
			want := refV
			if refW > outW {
				want &= (1 << outW) - 1
			}
			if got != want {
				t.Fatalf("trial %d pat %d: synthesized %#x, reference %#x (width %d)\nexpr: %s\nenv: %v",
					trial, pat, got, want, refW, verilog.DescribeExpr(e), env)
			}
		}
	}
}
