package synth

import (
	"fmt"
	"sort"

	"factor/internal/netlist"
	"factor/internal/verilog"
)

// undef marks a bit that has not been assigned on the current path.
// Merging an undef bit with a defined one indicates incomplete
// assignment (a latch) in combinational processes, which is an error.
const undef = -1

func undefBV(w int) []int {
	bv := make([]int, w)
	for i := range bv {
		bv[i] = undef
	}
	return bv
}

// sortedKeys returns m's keys in sorted order. Symbolic execution
// allocates gates while iterating target maps, and netlist gate
// numbering must be reproducible across process runs (checkpoint
// fingerprints hash the gate array).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// assignStyle records whether a register target uses blocking or
// nonblocking assignments (mixing both on one target is rejected).
type assignStyle int8

const (
	styleNone assignStyle = iota
	styleBlocking
	styleNonblocking
)

// executor symbolically executes a statement tree, producing
// multiplexer logic for control flow.
type executor struct {
	e       *elab
	sc      *scope
	clocked bool

	// vars holds the "blocking view": the value visible to subsequent
	// reads inside the process. next holds nonblocking next-state
	// values (clocked processes only).
	vars env
	next env

	// mask marks the bits of each target actually assigned somewhere.
	mask  map[string][]bool
	style map[string]assignStyle

	depth int
}

const maxExecDepth = 512

// synthAlways elaborates one always block.
func (e *elab) synthAlways(sc *scope, a *verilog.AlwaysBlock) error {
	clocked := a.Clocked()
	if clocked {
		for _, it := range a.Sens.Items {
			if it.Edge == EdgeNoneConst {
				return fmt.Errorf("synth: %s: mixed edge and level sensitivity is not supported", a.Pos)
			}
		}
	}
	ex := &executor{
		e:       e,
		sc:      sc,
		clocked: clocked,
		vars:    env{},
		next:    env{},
		mask:    map[string][]bool{},
		style:   map[string]assignStyle{},
	}
	if err := ex.exec(a.Body); err != nil {
		return err
	}
	// Commit results in sorted target order: this loop allocates DFF
	// gates, and gate numbering must not depend on map iteration order —
	// the netlist (and every checkpoint fingerprint derived from it)
	// has to be identical across process runs.
	for _, name := range sortedKeys(ex.mask) {
		bits := ex.mask[name]
		sig := sc.signals[name]
		if sig == nil {
			return fmt.Errorf("synth: %s: assignment to undeclared signal %s", a.Pos, name)
		}
		var final []int
		if ex.style[name] == styleNonblocking {
			final = ex.next[name]
		} else {
			final = ex.vars[name]
		}
		for i, assigned := range bits {
			if !assigned {
				continue
			}
			if final[i] == undef {
				return fmt.Errorf("synth: %s: %s bit %d is not assigned on all paths of a combinational always block (latch inferred)",
					a.Pos, name, i+sig.lsb)
			}
			if sig.driven[i] {
				return fmt.Errorf("synth: %s: multiple drivers for %s bit %d", a.Pos, name, i+sig.lsb)
			}
			var driver int
			if clocked {
				driver = e.nl.AddGate(netlist.DFF, final[i])
				e.nl.Gates[driver].Name = sc.prefix + bitName(name, sig, i) + "$dff"
			} else {
				driver = final[i]
			}
			e.nl.SetFanin(sig.anchors[i], 0, driver)
			sig.driven[i] = true
		}
	}
	return nil
}

// EdgeNoneConst mirrors verilog.EdgeNone for the mixed-sensitivity
// check without importing the constant directly into the condition.
const EdgeNoneConst = verilog.EdgeNone

// touch ensures the executor has working entries for a target signal.
func (ex *executor) touch(name string, pos verilog.Pos) (*signal, error) {
	sig, ok := ex.sc.signals[name]
	if !ok {
		return nil, fmt.Errorf("synth: %s: assignment to undeclared signal %s", pos, name)
	}
	if _, ok := ex.vars[name]; !ok {
		if ex.clocked {
			// Old value readable; next defaults to hold.
			ex.vars[name] = append([]int(nil), sig.anchors...)
			ex.next[name] = append([]int(nil), sig.anchors...)
		} else {
			ex.vars[name] = undefBV(sig.width)
		}
		if _, ok := ex.mask[name]; !ok {
			ex.mask[name] = make([]bool, sig.width)
		}
	}
	return sig, nil
}

// state snapshot for branch merging.
type execState struct {
	vars env
	next env
	mask map[string][]bool
}

func (ex *executor) snapshot() execState {
	m := make(map[string][]bool, len(ex.mask))
	for k, v := range ex.mask {
		m[k] = append([]bool(nil), v...)
	}
	return execState{vars: ex.vars.clone(), next: ex.next.clone(), mask: m}
}

func (ex *executor) restore(s execState) {
	ex.vars = s.vars
	ex.next = s.next
	ex.mask = s.mask
}

// merge combines two branch outcomes under select bit sel (sel=1 picks
// the "then" state).
func (ex *executor) merge(sel int, thenS, elseS execState, pos verilog.Pos) error {
	mergeEnv := func(t, f env) (env, error) {
		out := env{}
		keys := map[string]bool{}
		for k := range t {
			keys[k] = true
		}
		for k := range f {
			keys[k] = true
		}
		// Sorted merge order: the loop allocates mux gates, so iteration
		// order must be deterministic (see synthAlways commit loop).
		for _, k := range sortedKeys(keys) {
			tb, tok := t[k]
			fb, fok := f[k]
			switch {
			case tok && !fok:
				// Target only touched in then-branch: other branch
				// holds the pre-branch (untouched) value. touch()
				// recorded the pre-branch default in tb's creation, so
				// reconstruct the default for the else side.
				fb = ex.defaultFor(k, len(tb))
			case fok && !tok:
				tb = ex.defaultFor(k, len(fb))
			}
			if len(tb) != len(fb) {
				return nil, fmt.Errorf("synth: %s: internal width mismatch merging %s", pos, k)
			}
			merged := make([]int, len(tb))
			for i := range tb {
				switch {
				case tb[i] == fb[i]:
					merged[i] = tb[i]
				case tb[i] == undef || fb[i] == undef:
					merged[i] = undef
				default:
					merged[i] = ex.e.nl.AddGate(netlist.Mux, sel, fb[i], tb[i])
				}
			}
			out[k] = merged
		}
		return out, nil
	}
	var err error
	ex.vars, err = mergeEnv(thenS.vars, elseS.vars)
	if err != nil {
		return err
	}
	ex.next, err = mergeEnv(thenS.next, elseS.next)
	if err != nil {
		return err
	}
	mask := map[string][]bool{}
	for k, v := range thenS.mask {
		mask[k] = append([]bool(nil), v...)
	}
	for k, v := range elseS.mask {
		if mv, ok := mask[k]; ok {
			for i := range v {
				mv[i] = mv[i] || v[i]
			}
		} else {
			mask[k] = append([]bool(nil), v...)
		}
	}
	ex.mask = mask
	return nil
}

// defaultFor reconstructs the untouched value of a target for a branch
// that never assigned it: hold (anchors) when clocked, undef otherwise.
// Function-local variables (no declared signal) default to undef.
func (ex *executor) defaultFor(name string, w int) []int {
	if sig, ok := ex.sc.signals[name]; ok && ex.clocked {
		return append([]int(nil), sig.anchors...)
	}
	return undefBV(w)
}

func (ex *executor) exec(s verilog.Stmt) error {
	if ex.depth++; ex.depth > maxExecDepth {
		return fmt.Errorf("synth: %s: statement nesting too deep", s.StmtPos())
	}
	defer func() { ex.depth-- }()

	switch v := s.(type) {
	case *verilog.Block:
		for _, st := range v.Stmts {
			if err := ex.exec(st); err != nil {
				return err
			}
		}
		return nil
	case *verilog.NullStmt, *verilog.SysCallStmt:
		return nil
	case *verilog.AssignStmt:
		return ex.execAssign(v)
	case *verilog.IfStmt:
		return ex.execIf(v)
	case *verilog.CaseStmt:
		return ex.execCase(v)
	case *verilog.ForStmt:
		return ex.execFor(v)
	case *verilog.WhileStmt:
		return ex.execWhile(v)
	}
	return fmt.Errorf("synth: %s: unsupported statement in process", s.StmtPos())
}

func (ex *executor) execAssign(a *verilog.AssignStmt) error {
	rhs, err := ex.e.synthExpr(ex.sc, a.RHS, ex.vars)
	if err != nil {
		return err
	}
	name, offsets, err := ex.lvalueOffsets(a.LHS)
	if err != nil {
		return err
	}
	if _, err := ex.touch(name, a.Pos); err != nil {
		// Function locals are not module signals; create on the fly.
		if _, ok := ex.vars[name]; !ok {
			return err
		}
	}
	st := styleBlocking
	if !a.Blocking {
		st = styleNonblocking
	}
	if prev := ex.style[name]; prev != styleNone && prev != st {
		return fmt.Errorf("synth: %s: %s uses both blocking and nonblocking assignments", a.Pos, name)
	}
	ex.style[name] = st
	if !a.Blocking && !ex.clocked {
		return fmt.Errorf("synth: %s: nonblocking assignment to %s in a combinational always block", a.Pos, name)
	}

	rhs = extend(rhs, len(offsets), ex.e.zero)
	target := ex.vars[name]
	for _, off := range offsets {
		if off < 0 || off >= len(target) {
			return fmt.Errorf("synth: %s: bit select out of range on %s", a.Pos, name)
		}
	}
	if a.Blocking {
		for i, off := range offsets {
			target[off] = rhs[i]
		}
		// Blocking assignments in clocked blocks register the final
		// value; in combinational blocks they drive the net.
		if ex.clocked {
			if nx, ok := ex.next[name]; ok {
				for i, off := range offsets {
					nx[off] = rhs[i]
				}
			}
		}
	} else {
		nx := ex.next[name]
		for i, off := range offsets {
			nx[off] = rhs[i]
		}
	}
	if m, ok := ex.mask[name]; ok {
		for _, off := range offsets {
			m[off] = true
		}
	}
	return nil
}

// lvalueOffsets resolves a procedural lvalue into a signal name and the
// bit offsets (in vector index space, LSB=0) being written, LSB first.
func (ex *executor) lvalueOffsets(lhs verilog.Expr) (string, []int, error) {
	switch v := lhs.(type) {
	case *verilog.Ident:
		w := 0
		if sig, ok := ex.sc.signals[v.Name]; ok {
			w = sig.width
		} else if bv, ok := ex.vars[v.Name]; ok {
			w = len(bv)
		} else {
			return "", nil, fmt.Errorf("synth: %s: assignment to undeclared signal %s", v.Pos, v.Name)
		}
		offs := make([]int, w)
		for i := range offs {
			offs[i] = i
		}
		return v.Name, offs, nil
	case *verilog.IndexExpr:
		id, ok := v.X.(*verilog.Ident)
		if !ok {
			return "", nil, fmt.Errorf("synth: %s: unsupported lvalue", v.ExprPos())
		}
		lsb := 0
		if sig, ok := ex.sc.signals[id.Name]; ok {
			lsb = sig.lsb
		}
		idxBV, err := ex.e.synthExpr(ex.sc, v.Index, ex.vars)
		if err != nil {
			return "", nil, err
		}
		c, isConst := ex.e.bvConst(idxBV)
		if !isConst {
			return "", nil, fmt.Errorf("synth: %s: variable bit select on lvalue %s (unroll the loop or use constant indices)", v.ExprPos(), id.Name)
		}
		return id.Name, []int{int(c) - lsb}, nil
	case *verilog.RangeExpr:
		id, ok := v.X.(*verilog.Ident)
		if !ok {
			return "", nil, fmt.Errorf("synth: %s: unsupported lvalue", v.ExprPos())
		}
		lsb := 0
		if sig, ok := ex.sc.signals[id.Name]; ok {
			lsb = sig.lsb
		}
		m, err := ex.e.constEval(ex.sc, v.MSB)
		if err != nil {
			return "", nil, err
		}
		l, err := ex.e.constEval(ex.sc, v.LSB)
		if err != nil {
			return "", nil, err
		}
		if l > m {
			return "", nil, fmt.Errorf("synth: %s: reversed part select on %s", v.ExprPos(), id.Name)
		}
		offs := make([]int, m-l+1)
		for i := range offs {
			offs[i] = int(l) - lsb + i
		}
		return id.Name, offs, nil
	}
	return "", nil, fmt.Errorf("synth: %s: unsupported procedural lvalue (concatenation targets are not supported in processes)", lhs.ExprPos())
}

func (ex *executor) execIf(v *verilog.IfStmt) error {
	condBV, err := ex.e.synthExpr(ex.sc, v.Cond, ex.vars)
	if err != nil {
		return err
	}
	// Constant conditions (loop-unrolled code) take one branch only.
	if c, ok := ex.e.bvConst(condBV); ok {
		if c != 0 {
			return ex.exec(v.Then)
		}
		if v.Else != nil {
			return ex.exec(v.Else)
		}
		return nil
	}
	sel := ex.e.reduceOr(condBV)
	before := ex.snapshot()

	if err := ex.exec(v.Then); err != nil {
		return err
	}
	thenS := ex.snapshot()

	ex.restore(before)
	if v.Else != nil {
		if err := ex.exec(v.Else); err != nil {
			return err
		}
	}
	elseS := ex.snapshot()

	return ex.merge(sel, thenS, elseS, v.Pos)
}

func (ex *executor) execCase(v *verilog.CaseStmt) error {
	subj, err := ex.e.synthExpr(ex.sc, v.Subject, ex.vars)
	if err != nil {
		return err
	}
	return ex.execCaseItems(v, subj, 0)
}

// execCaseItems lowers a case statement to a priority if-else chain.
func (ex *executor) execCaseItems(v *verilog.CaseStmt, subj []int, i int) error {
	if i >= len(v.Items) {
		return nil
	}
	item := v.Items[i]
	if len(item.Exprs) == 0 { // default
		return ex.exec(item.Body)
	}
	// Build the match condition for this arm.
	var conds []int
	for _, le := range item.Exprs {
		c, err := ex.caseMatch(v.Kind, subj, le)
		if err != nil {
			return err
		}
		conds = append(conds, c)
	}
	sel := ex.e.reduceOr(conds)
	if c, ok := constGate(ex.e, sel); ok {
		if c {
			return ex.exec(item.Body)
		}
		return ex.execCaseItems(v, subj, i+1)
	}

	before := ex.snapshot()
	if err := ex.exec(item.Body); err != nil {
		return err
	}
	thenS := ex.snapshot()

	ex.restore(before)
	if err := ex.execCaseItems(v, subj, i+1); err != nil {
		return err
	}
	elseS := ex.snapshot()

	return ex.merge(sel, thenS, elseS, v.Pos)
}

func constGate(e *elab, g int) (bool, bool) {
	switch e.nl.Gates[g].Kind {
	case netlist.Const0:
		return false, true
	case netlist.Const1:
		return true, true
	}
	return false, false
}

// caseMatch builds the equality (with casez/casex wildcards) between
// the subject and one case label.
func (ex *executor) caseMatch(kind verilog.CaseKind, subj []int, label verilog.Expr) (int, error) {
	if num, ok := label.(*verilog.Number); ok && num.HasXZ() {
		var ignore uint64
		switch kind {
		case verilog.CaseZ:
			ignore = num.ZMask
			if num.XMask != 0 {
				return 0, fmt.Errorf("synth: %s: x bits in casez label %s", num.Pos, num.Text)
			}
		case verilog.CaseX:
			ignore = num.ZMask | num.XMask
		default:
			return 0, fmt.Errorf("synth: %s: x/z bits in plain case label %s never match in hardware", num.Pos, num.Text)
		}
		var bits []int
		w := num.Width
		for i := 0; i < w && i < len(subj); i++ {
			if ignore&(1<<uint(i)) != 0 {
				continue
			}
			if num.Value&(1<<uint(i)) != 0 {
				bits = append(bits, subj[i])
			} else {
				bits = append(bits, ex.e.nl.AddGate(netlist.Not, subj[i]))
			}
		}
		if len(bits) == 0 {
			return ex.e.one, nil
		}
		return ex.e.tree(netlist.And, bits), nil
	}
	lv, err := ex.e.synthExpr(ex.sc, label, ex.vars)
	if err != nil {
		return 0, err
	}
	return ex.e.equality(subj, lv), nil
}

func (ex *executor) execFor(v *verilog.ForStmt) error {
	if err := ex.execAssign(v.Init); err != nil {
		return err
	}
	for iter := 0; ; iter++ {
		if iter >= ex.e.maxLoop {
			return fmt.Errorf("synth: %s: for loop exceeded %d iterations (is the condition constant?)", v.Pos, ex.e.maxLoop)
		}
		condBV, err := ex.e.synthExpr(ex.sc, v.Cond, ex.vars)
		if err != nil {
			return err
		}
		c, ok := ex.e.bvConst(condBV)
		if !ok {
			return fmt.Errorf("synth: %s: for loop condition is not compile-time constant; loops are fully unrolled", v.Pos)
		}
		if c == 0 {
			return nil
		}
		if err := ex.exec(v.Body); err != nil {
			return err
		}
		if err := ex.execAssign(v.Step); err != nil {
			return err
		}
	}
}

func (ex *executor) execWhile(v *verilog.WhileStmt) error {
	for iter := 0; ; iter++ {
		if iter >= ex.e.maxLoop {
			return fmt.Errorf("synth: %s: while loop exceeded %d iterations (is the condition constant?)", v.Pos, ex.e.maxLoop)
		}
		condBV, err := ex.e.synthExpr(ex.sc, v.Cond, ex.vars)
		if err != nil {
			return err
		}
		c, ok := ex.e.bvConst(condBV)
		if !ok {
			return fmt.Errorf("synth: %s: while loop condition is not compile-time constant; loops are fully unrolled", v.Pos)
		}
		if c == 0 {
			return nil
		}
		if err := ex.exec(v.Body); err != nil {
			return err
		}
	}
}
