package synth

import (
	"fmt"

	"factor/internal/netlist"
	"factor/internal/verilog"
)

// env is the symbolic-execution environment used inside always blocks
// and functions: it maps signal names to their current bit-vector
// values, overriding the anchors. A nil env reads anchors directly.
type env map[string][]int

func (v env) clone() env {
	c := make(env, len(v))
	for k, bv := range v {
		c[k] = append([]int(nil), bv...)
	}
	return c
}

// constEval evaluates an expression that must be a compile-time
// constant (parameter values, ranges, case labels, replication counts).
func (e *elab) constEval(sc *scope, x verilog.Expr) (int64, error) {
	switch v := x.(type) {
	case *verilog.Number:
		if v.HasXZ() {
			return 0, fmt.Errorf("%s: x/z literal is not a constant value", v.Pos)
		}
		return int64(v.Value), nil
	case *verilog.Ident:
		if val, ok := sc.params[v.Name]; ok {
			return val, nil
		}
		return 0, fmt.Errorf("%s: %s is not a constant (not a parameter)", v.Pos, v.Name)
	case *verilog.UnaryExpr:
		a, err := e.constEval(sc, v.X)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case verilog.UnaryPlus:
			return a, nil
		case verilog.UnaryMinus:
			return -a, nil
		case verilog.UnaryNot:
			if a == 0 {
				return 1, nil
			}
			return 0, nil
		case verilog.UnaryBitNot:
			return ^a, nil
		}
		return 0, fmt.Errorf("%s: reduction operator in constant expression", v.Pos)
	case *verilog.BinaryExpr:
		a, err := e.constEval(sc, v.X)
		if err != nil {
			return 0, err
		}
		b, err := e.constEval(sc, v.Y)
		if err != nil {
			return 0, err
		}
		switch v.Op {
		case verilog.BinAdd:
			return a + b, nil
		case verilog.BinSub:
			return a - b, nil
		case verilog.BinMul:
			return a * b, nil
		case verilog.BinDiv:
			if b == 0 {
				return 0, fmt.Errorf("%s: constant division by zero", v.Pos)
			}
			return a / b, nil
		case verilog.BinMod:
			if b == 0 {
				return 0, fmt.Errorf("%s: constant modulo by zero", v.Pos)
			}
			return a % b, nil
		case verilog.BinAnd:
			return a & b, nil
		case verilog.BinOr:
			return a | b, nil
		case verilog.BinXor:
			return a ^ b, nil
		case verilog.BinShl:
			return a << uint(b), nil
		case verilog.BinShr, verilog.BinAShr:
			return a >> uint(b), nil
		case verilog.BinLt:
			return b2i(a < b), nil
		case verilog.BinLe:
			return b2i(a <= b), nil
		case verilog.BinGt:
			return b2i(a > b), nil
		case verilog.BinGe:
			return b2i(a >= b), nil
		case verilog.BinEq, verilog.BinCaseEq:
			return b2i(a == b), nil
		case verilog.BinNeq, verilog.BinCaseNe:
			return b2i(a != b), nil
		case verilog.BinLogAnd:
			return b2i(a != 0 && b != 0), nil
		case verilog.BinLogOr:
			return b2i(a != 0 || b != 0), nil
		}
		return 0, fmt.Errorf("%s: unsupported constant operator", v.Pos)
	case *verilog.CondExpr:
		c, err := e.constEval(sc, v.Cond)
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return e.constEval(sc, v.Then)
		}
		return e.constEval(sc, v.Else)
	}
	return 0, fmt.Errorf("%s: not a constant expression", x.ExprPos())
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func popcount(v uint64) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

// bvConst reports whether all bits of bv are constant gates and, if
// so, the value they encode.
func (e *elab) bvConst(bv []int) (uint64, bool) {
	var v uint64
	for i, g := range bv {
		switch e.nl.Gates[g].Kind {
		case netlist.Const1:
			if i < 64 {
				v |= 1 << uint(i)
			}
		case netlist.Const0:
		default:
			return 0, false
		}
	}
	return v, true
}

// synthExpr elaborates an expression to a bit vector (LSB first).
func (e *elab) synthExpr(sc *scope, x verilog.Expr, vars env) ([]int, error) {
	switch v := x.(type) {
	case *verilog.Number:
		if v.HasXZ() {
			return nil, fmt.Errorf("synth: %s: x/z literal %s outside casez/casex label", v.Pos, v.Text)
		}
		w := v.Width
		if w == 0 || w > 64 {
			w = 32
		}
		return e.constBV(v.Value, w), nil

	case *verilog.Ident:
		if bv, ok := vars[v.Name]; ok {
			return append([]int(nil), bv...), nil
		}
		if pv, ok := sc.params[v.Name]; ok {
			return e.constBV(uint64(pv), 32), nil
		}
		sig, ok := sc.signals[v.Name]
		if !ok {
			return nil, fmt.Errorf("synth: %s: reference to undeclared signal %s", v.Pos, v.Name)
		}
		return append([]int(nil), sig.anchors...), nil

	case *verilog.UnaryExpr:
		a, err := e.synthExpr(sc, v.X, vars)
		if err != nil {
			return nil, err
		}
		if av, ok := e.bvConst(a); ok {
			w := len(a)
			switch v.Op {
			case verilog.UnaryPlus:
				return a, nil
			case verilog.UnaryMinus:
				return e.constBV(maskTo(-av, w), w), nil
			case verilog.UnaryBitNot:
				return e.constBV(maskTo(^av, w), w), nil
			case verilog.UnaryNot:
				return e.constBV(maskTo(b2u(av == 0), 1), 1), nil
			case verilog.UnaryOr:
				return e.constBV(b2u(av != 0), 1), nil
			case verilog.UnaryNor:
				return e.constBV(b2u(av == 0), 1), nil
			case verilog.UnaryAnd:
				return e.constBV(b2u(av == maskTo(^uint64(0), w)), 1), nil
			case verilog.UnaryNand:
				return e.constBV(b2u(av != maskTo(^uint64(0), w)), 1), nil
			case verilog.UnaryXor:
				return e.constBV(uint64(popcount(av)&1), 1), nil
			case verilog.UnaryXnor:
				return e.constBV(uint64(1-popcount(av)&1), 1), nil
			}
		}
		switch v.Op {
		case verilog.UnaryPlus:
			return a, nil
		case verilog.UnaryMinus:
			return e.negate(a), nil
		case verilog.UnaryBitNot:
			out := make([]int, len(a))
			for i, g := range a {
				out[i] = e.nl.AddGate(netlist.Not, g)
			}
			return out, nil
		case verilog.UnaryNot:
			return []int{e.nl.AddGate(netlist.Not, e.reduceOr(a))}, nil
		case verilog.UnaryAnd:
			return []int{e.tree(netlist.And, a)}, nil
		case verilog.UnaryNand:
			return []int{e.nl.AddGate(netlist.Not, e.tree(netlist.And, a))}, nil
		case verilog.UnaryOr:
			return []int{e.reduceOr(a)}, nil
		case verilog.UnaryNor:
			return []int{e.nl.AddGate(netlist.Not, e.reduceOr(a))}, nil
		case verilog.UnaryXor:
			return []int{e.tree(netlist.Xor, a)}, nil
		case verilog.UnaryXnor:
			return []int{e.nl.AddGate(netlist.Not, e.tree(netlist.Xor, a))}, nil
		}
		return nil, fmt.Errorf("synth: %s: unsupported unary operator", v.ExprPos())

	case *verilog.BinaryExpr:
		return e.synthBinary(sc, v, vars)

	case *verilog.CondExpr:
		cond, err := e.synthExpr(sc, v.Cond, vars)
		if err != nil {
			return nil, err
		}
		sel := e.reduceOr(cond)
		thenBV, err := e.synthExpr(sc, v.Then, vars)
		if err != nil {
			return nil, err
		}
		elseBV, err := e.synthExpr(sc, v.Else, vars)
		if err != nil {
			return nil, err
		}
		w := max(len(thenBV), len(elseBV))
		thenBV = extend(thenBV, w, e.zero)
		elseBV = extend(elseBV, w, e.zero)
		out := make([]int, w)
		for i := 0; i < w; i++ {
			out[i] = e.nl.AddGate(netlist.Mux, sel, elseBV[i], thenBV[i])
		}
		return out, nil

	case *verilog.IndexExpr:
		base, err := e.synthExpr(sc, v.X, vars)
		if err != nil {
			return nil, err
		}
		lsbOff := 0
		if id, ok := v.X.(*verilog.Ident); ok {
			if sig, ok := sc.signals[id.Name]; ok {
				lsbOff = sig.lsb
			}
		}
		idxBV, err := e.synthExpr(sc, v.Index, vars)
		if err != nil {
			return nil, err
		}
		if c, ok := e.bvConst(idxBV); ok {
			bit := int(c) - lsbOff
			if bit < 0 || bit >= len(base) {
				return nil, fmt.Errorf("synth: %s: constant bit select [%d] out of range", v.ExprPos(), c)
			}
			return []int{base[bit]}, nil
		}
		// Variable index: decoder + OR tree. The declared LSB offset is
		// subtracted via the comparison constants.
		var terms []int
		for i := range base {
			eq := e.eqConst(idxBV, uint64(i+lsbOff))
			terms = append(terms, e.nl.AddGate(netlist.And, eq, base[i]))
		}
		return []int{e.reduceOr(terms)}, nil

	case *verilog.RangeExpr:
		base, err := e.synthExpr(sc, v.X, vars)
		if err != nil {
			return nil, err
		}
		lsbOff := 0
		if id, ok := v.X.(*verilog.Ident); ok {
			if sig, ok := sc.signals[id.Name]; ok {
				lsbOff = sig.lsb
			}
		}
		msb, err := e.constEval(sc, v.MSB)
		if err != nil {
			return nil, fmt.Errorf("synth: %s: part select bounds must be constant: %v", v.ExprPos(), err)
		}
		lsb, err := e.constEval(sc, v.LSB)
		if err != nil {
			return nil, fmt.Errorf("synth: %s: part select bounds must be constant: %v", v.ExprPos(), err)
		}
		lo, hi := int(lsb)-lsbOff, int(msb)-lsbOff
		if lo < 0 || hi >= len(base) || lo > hi {
			return nil, fmt.Errorf("synth: %s: part select [%d:%d] out of range", v.ExprPos(), msb, lsb)
		}
		return append([]int(nil), base[lo:hi+1]...), nil

	case *verilog.ConcatExpr:
		// MSB-first in source; LSB-first in our vectors.
		var out []int
		for i := len(v.Parts) - 1; i >= 0; i-- {
			bv, err := e.synthExpr(sc, v.Parts[i], vars)
			if err != nil {
				return nil, err
			}
			out = append(out, bv...)
		}
		return out, nil

	case *verilog.ReplExpr:
		count, err := e.constEval(sc, v.Count)
		if err != nil {
			return nil, fmt.Errorf("synth: %s: replication count must be constant: %v", v.ExprPos(), err)
		}
		if count <= 0 || count > 64 {
			return nil, fmt.Errorf("synth: %s: replication count %d out of range", v.ExprPos(), count)
		}
		bv, err := e.synthExpr(sc, v.X, vars)
		if err != nil {
			return nil, err
		}
		var out []int
		for i := int64(0); i < count; i++ {
			out = append(out, bv...)
		}
		return out, nil

	case *verilog.CallExpr:
		return e.synthCall(sc, v, vars)
	}
	return nil, fmt.Errorf("synth: %s: unsupported expression", x.ExprPos())
}

func (e *elab) synthBinary(sc *scope, v *verilog.BinaryExpr, vars env) ([]int, error) {
	a, err := e.synthExpr(sc, v.X, vars)
	if err != nil {
		return nil, err
	}
	b, err := e.synthExpr(sc, v.Y, vars)
	if err != nil {
		return nil, err
	}
	// Constant folding keeps unrolled loop indices compile-time
	// constant (loop conditions must fold) and avoids emitting gates
	// for parameter arithmetic.
	if av, aok := e.bvConst(a); aok {
		if bv, bok := e.bvConst(b); bok {
			if folded, ok := foldConstBinary(v.Op, av, bv, len(a), len(b)); ok {
				return e.constBV(folded.value, folded.width), nil
			}
		}
	}
	switch v.Op {
	case verilog.BinAnd, verilog.BinOr, verilog.BinXor, verilog.BinXnor:
		w := max(len(a), len(b))
		a, b = extend(a, w, e.zero), extend(b, w, e.zero)
		out := make([]int, w)
		for i := 0; i < w; i++ {
			switch v.Op {
			case verilog.BinAnd:
				out[i] = e.nl.AddGate(netlist.And, a[i], b[i])
			case verilog.BinOr:
				out[i] = e.nl.AddGate(netlist.Or, a[i], b[i])
			case verilog.BinXor:
				out[i] = e.nl.AddGate(netlist.Xor, a[i], b[i])
			case verilog.BinXnor:
				out[i] = e.nl.AddGate(netlist.Xnor, a[i], b[i])
			}
		}
		return out, nil

	case verilog.BinLogAnd:
		return []int{e.nl.AddGate(netlist.And, e.reduceOr(a), e.reduceOr(b))}, nil
	case verilog.BinLogOr:
		return []int{e.nl.AddGate(netlist.Or, e.reduceOr(a), e.reduceOr(b))}, nil

	case verilog.BinAdd:
		w := max(len(a), len(b))
		sum, _ := e.adder(extend(a, w, e.zero), extend(b, w, e.zero), e.zero)
		return sum, nil
	case verilog.BinSub:
		w := max(len(a), len(b))
		bb := extend(b, w, e.zero)
		nb := make([]int, w)
		for i := range nb {
			nb[i] = e.nl.AddGate(netlist.Not, bb[i])
		}
		diff, _ := e.adder(extend(a, w, e.zero), nb, e.one)
		return diff, nil

	case verilog.BinMul:
		return e.multiplier(a, b)

	case verilog.BinDiv, verilog.BinMod:
		av, aok := e.bvConst(a)
		bv, bok := e.bvConst(b)
		if !aok || !bok {
			return nil, fmt.Errorf("synth: %s: division/modulo require constant operands", v.ExprPos())
		}
		if bv == 0 {
			return nil, fmt.Errorf("synth: %s: constant division by zero", v.ExprPos())
		}
		var r uint64
		if v.Op == verilog.BinDiv {
			r = av / bv
		} else {
			r = av % bv
		}
		return e.constBV(r, max(len(a), len(b))), nil

	case verilog.BinEq, verilog.BinCaseEq:
		return []int{e.equality(a, b)}, nil
	case verilog.BinNeq, verilog.BinCaseNe:
		return []int{e.nl.AddGate(netlist.Not, e.equality(a, b))}, nil

	case verilog.BinLt:
		return []int{e.lessThan(a, b)}, nil
	case verilog.BinGt:
		return []int{e.lessThan(b, a)}, nil
	case verilog.BinLe:
		return []int{e.nl.AddGate(netlist.Not, e.lessThan(b, a))}, nil
	case verilog.BinGe:
		return []int{e.nl.AddGate(netlist.Not, e.lessThan(a, b))}, nil

	case verilog.BinShl, verilog.BinShr, verilog.BinAShr:
		return e.shift(sc, v.Op, a, b)
	}
	return nil, fmt.Errorf("synth: %s: unsupported binary operator %s", v.ExprPos(), v.Op)
}

// reduceOr collapses a vector to a single "is nonzero" bit.
func (e *elab) reduceOr(bv []int) int {
	if len(bv) == 1 {
		return bv[0]
	}
	return e.tree(netlist.Or, bv)
}

// equality builds a == b over the common (zero-extended) width.
func (e *elab) equality(a, b []int) int {
	w := max(len(a), len(b))
	a, b = extend(a, w, e.zero), extend(b, w, e.zero)
	bits := make([]int, w)
	for i := 0; i < w; i++ {
		bits[i] = e.nl.AddGate(netlist.Xnor, a[i], b[i])
	}
	return e.tree(netlist.And, bits)
}

// eqConst builds bv == c.
func (e *elab) eqConst(bv []int, c uint64) int {
	bits := make([]int, len(bv))
	for i := range bv {
		if c&(1<<uint(i)) != 0 {
			bits[i] = bv[i]
		} else {
			bits[i] = e.nl.AddGate(netlist.Not, bv[i])
		}
	}
	// Constant bits beyond the vector width must be zero for equality.
	if len(bv) < 64 && c>>uint(len(bv)) != 0 {
		return e.zero
	}
	return e.tree(netlist.And, bits)
}

// lessThan builds unsigned a < b via a ripple borrow comparator.
func (e *elab) lessThan(a, b []int) int {
	w := max(len(a), len(b))
	a, b = extend(a, w, e.zero), extend(b, w, e.zero)
	// lt_i = (~a_i & b_i) | (a_i XNOR b_i) & lt_{i-1}, from LSB up.
	lt := e.zero
	for i := 0; i < w; i++ {
		na := e.nl.AddGate(netlist.Not, a[i])
		strict := e.nl.AddGate(netlist.And, na, b[i])
		eq := e.nl.AddGate(netlist.Xnor, a[i], b[i])
		carry := e.nl.AddGate(netlist.And, eq, lt)
		lt = e.nl.AddGate(netlist.Or, strict, carry)
	}
	return lt
}

// adder builds a ripple-carry adder; returns the sum bits and carry out.
func (e *elab) adder(a, b []int, cin int) ([]int, int) {
	w := len(a)
	sum := make([]int, w)
	c := cin
	for i := 0; i < w; i++ {
		axb := e.nl.AddGate(netlist.Xor, a[i], b[i])
		sum[i] = e.nl.AddGate(netlist.Xor, axb, c)
		ab := e.nl.AddGate(netlist.And, a[i], b[i])
		cab := e.nl.AddGate(netlist.And, c, axb)
		c = e.nl.AddGate(netlist.Or, ab, cab)
	}
	return sum, c
}

// negate builds the two's complement of a.
func (e *elab) negate(a []int) []int {
	na := make([]int, len(a))
	for i := range a {
		na[i] = e.nl.AddGate(netlist.Not, a[i])
	}
	one := extend([]int{e.one}, len(a), e.zero)
	sum, _ := e.adder(na, one, e.zero)
	return sum
}

// multiplier builds a shift-and-add array multiplier. The result width
// is the sum of operand widths, capped at 64.
func (e *elab) multiplier(a, b []int) ([]int, error) {
	w := len(a) + len(b)
	if w > 64 {
		w = 64
	}
	acc := e.constBV(0, w)
	for i := range b {
		// partial_i = (a << i) & {w{b[i]}}
		part := make([]int, w)
		for j := 0; j < w; j++ {
			if j-i >= 0 && j-i < len(a) {
				part[j] = e.nl.AddGate(netlist.And, a[j-i], b[i])
			} else {
				part[j] = e.zero
			}
		}
		acc, _ = e.adder(acc, part, e.zero)
	}
	return acc, nil
}

// shift builds shift operations. Constant shift amounts become pure
// rewiring; variable amounts become a mux barrel.
func (e *elab) shift(sc *scope, op verilog.BinaryOp, a, amt []int) ([]int, error) {
	_ = sc
	if c, ok := e.bvConst(amt); ok {
		return e.shiftConst(op, a, int(c)), nil
	}
	// Barrel shifter: stage k shifts by 2^k when amt[k] is set.
	cur := append([]int(nil), a...)
	maxStage := 0
	for s := 1; s < len(a); s <<= 1 {
		maxStage++
	}
	for k := 0; k < len(amt) && k < maxStage; k++ {
		shifted := e.shiftConst(op, cur, 1<<uint(k))
		next := make([]int, len(a))
		for i := range next {
			next[i] = e.nl.AddGate(netlist.Mux, amt[k], cur[i], shifted[i])
		}
		cur = next
	}
	// Amount bits beyond the width force the result toward the fill
	// value (0 for logical shifts, sign for arithmetic).
	if len(amt) > maxStage {
		over := e.reduceOr(amt[maxStage:])
		fill := e.zero
		if op == verilog.BinAShr {
			fill = a[len(a)-1]
		}
		for i := range cur {
			cur[i] = e.nl.AddGate(netlist.Mux, over, cur[i], fill)
		}
	}
	return cur, nil
}

func (e *elab) shiftConst(op verilog.BinaryOp, a []int, n int) []int {
	w := len(a)
	out := make([]int, w)
	for i := 0; i < w; i++ {
		switch op {
		case verilog.BinShl:
			if i-n >= 0 {
				out[i] = a[i-n]
			} else {
				out[i] = e.zero
			}
		case verilog.BinShr:
			if i+n < w {
				out[i] = a[i+n]
			} else {
				out[i] = e.zero
			}
		case verilog.BinAShr:
			if i+n < w {
				out[i] = a[i+n]
			} else {
				out[i] = a[w-1]
			}
		}
	}
	return out
}

// synthCall inlines a function call.
func (e *elab) synthCall(sc *scope, call *verilog.CallExpr, vars env) ([]int, error) {
	fn, ok := sc.funcs[call.Name]
	if !ok {
		return nil, fmt.Errorf("synth: %s: call to unknown function %s", call.ExprPos(), call.Name)
	}
	if len(call.Args) != len(fn.Inputs) {
		return nil, fmt.Errorf("synth: %s: function %s expects %d arguments, got %d",
			call.ExprPos(), call.Name, len(fn.Inputs), len(call.Args))
	}
	local := env{}
	for i, in := range fn.Inputs {
		bv, err := e.synthExpr(sc, call.Args[i], vars)
		if err != nil {
			return nil, err
		}
		w, _, _, err := e.rangeBounds(sc, in.Width)
		if err != nil {
			return nil, err
		}
		local[in.Name] = extend(bv, w, e.zero)
	}
	retW, _, _, err := e.rangeBounds(sc, fn.Width)
	if err != nil {
		return nil, err
	}
	local[fn.Name] = undefBV(retW)
	for _, decl := range fn.Locals {
		w, _, _, err := e.rangeBounds(sc, decl.Width)
		if err != nil {
			return nil, err
		}
		if decl.Kind == verilog.NetInteger {
			w = 32
		}
		for _, n := range decl.Names {
			local[n] = undefBV(w)
		}
	}
	ex := &executor{
		e: e, sc: sc, clocked: false,
		vars: local, next: env{},
		mask:  map[string][]bool{},
		style: map[string]assignStyle{},
	}
	if err := ex.exec(fn.Body); err != nil {
		return nil, err
	}
	// Branch merging replaces the executor's environment map, so the
	// result must be read from ex.vars, not the initial binding map.
	ret := ex.vars[fn.Name]
	for _, b := range ret {
		if b == undef {
			return nil, fmt.Errorf("synth: %s: function %s does not assign its result on all paths", call.ExprPos(), call.Name)
		}
	}
	return ret, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// constResult is the outcome of compile-time binary folding.
type constResult struct {
	value uint64
	width int
}

func maskTo(v uint64, w int) uint64 {
	if w >= 64 {
		return v
	}
	return v & ((uint64(1) << uint(w)) - 1)
}

// foldConstBinary evaluates a binary operation over constant operands.
// The reported width matches the width the gate-level construction
// would have produced. Division/modulo are left to the caller (they
// carry their own error handling).
func foldConstBinary(op verilog.BinaryOp, a, b uint64, wa, wb int) (constResult, bool) {
	w := wa
	if wb > w {
		w = wb
	}
	bool1 := func(v bool) (constResult, bool) {
		if v {
			return constResult{1, 1}, true
		}
		return constResult{0, 1}, true
	}
	switch op {
	case verilog.BinAdd:
		return constResult{maskTo(a+b, w), w}, true
	case verilog.BinSub:
		return constResult{maskTo(a-b, w), w}, true
	case verilog.BinMul:
		mw := wa + wb
		if mw > 64 {
			mw = 64
		}
		return constResult{maskTo(a*b, mw), mw}, true
	case verilog.BinAnd:
		return constResult{a & b, w}, true
	case verilog.BinOr:
		return constResult{a | b, w}, true
	case verilog.BinXor:
		return constResult{a ^ b, w}, true
	case verilog.BinXnor:
		return constResult{maskTo(^(a ^ b), w), w}, true
	case verilog.BinLogAnd:
		return bool1(a != 0 && b != 0)
	case verilog.BinLogOr:
		return bool1(a != 0 || b != 0)
	case verilog.BinEq, verilog.BinCaseEq:
		return bool1(a == b)
	case verilog.BinNeq, verilog.BinCaseNe:
		return bool1(a != b)
	case verilog.BinLt:
		return bool1(a < b)
	case verilog.BinLe:
		return bool1(a <= b)
	case verilog.BinGt:
		return bool1(a > b)
	case verilog.BinGe:
		return bool1(a >= b)
	case verilog.BinShl:
		if b >= 64 {
			return constResult{0, wa}, true
		}
		return constResult{maskTo(a<<b, wa), wa}, true
	case verilog.BinShr:
		if b >= 64 {
			return constResult{0, wa}, true
		}
		return constResult{a >> b, wa}, true
	case verilog.BinAShr:
		// Arithmetic shift fills with the operand's top bit, matching
		// the gate-level construction.
		sign := (a >> uint(wa-1)) & 1
		if b >= uint64(wa) {
			if sign == 1 {
				return constResult{maskTo(^uint64(0), wa), wa}, true
			}
			return constResult{0, wa}, true
		}
		r := a >> b
		if sign == 1 {
			for i := uint64(0); i < b; i++ {
				r |= 1 << (uint64(wa) - 1 - i)
			}
		}
		return constResult{maskTo(r, wa), wa}, true
	}
	return constResult{}, false
}
