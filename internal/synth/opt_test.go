package synth

import (
	"math/rand"
	"testing"

	"factor/internal/netlist"
	"factor/internal/sim"
)

// optEquiv optimizes a hand-built netlist and verifies (a) gates do not
// increase and (b) behavior is preserved on all binary input patterns
// (up to 2^12 exhaustive, else random).
func optEquiv(t *testing.T, n *netlist.Netlist) *netlist.Netlist {
	t.Helper()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	opt := Optimize(n)
	if err := opt.Validate(); err != nil {
		t.Fatalf("optimized netlist invalid: %v", err)
	}
	if opt.NumGates() > n.NumGates() {
		t.Errorf("optimization grew the netlist: %d -> %d", n.NumGates(), opt.NumGates())
	}

	nIn := len(n.PIs)
	patterns := 1 << uint(nIn)
	exhaustive := nIn <= 12
	if !exhaustive {
		patterns = 256
	}
	rng := rand.New(rand.NewSource(5))
	s1 := sim.New(n)
	s2 := sim.New(opt)
	for p := 0; p < patterns; p++ {
		var bits uint64
		if exhaustive {
			bits = uint64(p)
		} else {
			bits = rng.Uint64()
		}
		for i := range n.PIs {
			v := sim.Logic((bits >> uint(i)) & 1)
			s1.SetInputScalar(n.PIs[i], v)
			s2.SetInputScalar(opt.PI(n.PINames[i]), v)
		}
		// Two clocked evaluations cover sequential behavior too.
		for step := 0; step < 2; step++ {
			s1.Eval()
			s2.Eval()
			for i := range n.POs {
				v1 := s1.Value(n.POs[i]).Lane(0)
				v2 := s2.Value(opt.PO(n.PONames[i])).Lane(0)
				// The optimizer may resolve X to a constant (binary
				// identities like x&~x=0), but never the reverse.
				if v1 != sim.LX && v1 != v2 {
					t.Fatalf("pattern %d step %d: output %s: %v -> %v", p, step, n.PONames[i], v1, v2)
				}
			}
			s1.Step()
			s2.Step()
		}
	}
	return opt
}

func TestOptimizeIdentities(t *testing.T) {
	n := netlist.New("idents")
	a := n.AddInput("a")
	b := n.AddInput("b")
	zero := n.AddGate(netlist.Const0)
	one := n.AddGate(netlist.Const1)

	n.AddOutput("and0", n.AddGate(netlist.And, a, zero))   // -> 0
	n.AddOutput("and1", n.AddGate(netlist.And, a, one))    // -> a
	n.AddOutput("or1", n.AddGate(netlist.Or, a, one))      // -> 1
	n.AddOutput("oraa", n.AddGate(netlist.Or, a, a))       // -> a
	n.AddOutput("xorself", n.AddGate(netlist.Xor, b, b))   // -> 0
	n.AddOutput("xnor0", n.AddGate(netlist.Xnor, b, zero)) // -> ~b
	n.AddOutput("nand0", n.AddGate(netlist.Nand, a, zero)) // -> 1
	n.AddOutput("nor1", n.AddGate(netlist.Nor, a, one))    // -> 0
	nb := n.AddGate(netlist.Not, b)
	n.AddOutput("andcompl", n.AddGate(netlist.And, b, nb)) // -> 0
	n.AddOutput("orcompl", n.AddGate(netlist.Or, b, nb))   // -> 1
	nn := n.AddGate(netlist.Not, nb)
	n.AddOutput("notnot", nn) // -> b

	opt := optEquiv(t, n)
	// Everything above folds away: only the Not feeding xnor0 remains.
	if got := opt.NumGates(); got > 1 {
		t.Errorf("identities left %d gates, want <= 1 (%s)", got, opt.ComputeStats().KindCounts())
	}
}

func TestOptimizeMuxRules(t *testing.T) {
	n := netlist.New("mux")
	s := n.AddInput("s")
	a := n.AddInput("a")
	zero := n.AddGate(netlist.Const0)
	one := n.AddGate(netlist.Const1)
	n.AddOutput("m01", n.AddGate(netlist.Mux, s, zero, one)) // -> s
	n.AddOutput("m10", n.AddGate(netlist.Mux, s, one, zero)) // -> ~s
	n.AddOutput("m0a", n.AddGate(netlist.Mux, s, zero, a))   // -> s & a
	n.AddOutput("ma0", n.AddGate(netlist.Mux, s, a, zero))   // -> ~s & a
	n.AddOutput("m1a", n.AddGate(netlist.Mux, s, one, a))    // -> ~s | a
	n.AddOutput("ma1", n.AddGate(netlist.Mux, s, a, one))    // -> s | a
	n.AddOutput("maa", n.AddGate(netlist.Mux, s, a, a))      // -> a
	na := n.AddGate(netlist.Not, a)
	n.AddOutput("maxor", n.AddGate(netlist.Mux, s, a, na)) // -> s ^ a
	opt := optEquiv(t, n)
	for _, g := range opt.Gates {
		if g.Kind == netlist.Mux {
			t.Errorf("a mux survived constant-input simplification")
		}
	}
}

func TestOptimizeStructuralSharing(t *testing.T) {
	n := netlist.New("share")
	a := n.AddInput("a")
	b := n.AddInput("b")
	x1 := n.AddGate(netlist.And, a, b)
	x2 := n.AddGate(netlist.And, b, a) // commutative duplicate
	n.AddOutput("y", n.AddGate(netlist.Xor, x1, x2))
	opt := optEquiv(t, n)
	// And(a,b) == And(b,a) shared; Xor(x,x) -> 0: everything folds.
	if opt.NumGates() != 0 {
		t.Errorf("gates = %d, want 0", opt.NumGates())
	}
}

func TestOptimizeKeepsLiveSequentialLoops(t *testing.T) {
	n := netlist.New("loop")
	en := n.AddInput("en")
	q := n.AddGate(netlist.DFF, en)
	d := n.AddGate(netlist.Xor, q, en)
	n.SetFanin(q, 0, d)
	n.AddOutput("q", q)
	opt := optEquiv(t, n)
	if len(opt.DFFs) != 1 {
		t.Errorf("DFF count = %d, want 1", len(opt.DFFs))
	}
}

func TestOptimizeSweepsDeadFlops(t *testing.T) {
	n := netlist.New("deadflop")
	a := n.AddInput("a")
	n.AddGate(netlist.DFF, a) // unobserved
	live := n.AddGate(netlist.Not, a)
	n.AddOutput("y", live)
	opt := Optimize(n)
	if len(opt.DFFs) != 0 {
		t.Errorf("dead flop survived")
	}
}

func TestOptimizeRandomEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		n := netlist.New("rand")
		for i := 0; i < 5; i++ {
			n.AddInput(string(rune('a' + i)))
		}
		zero := n.AddGate(netlist.Const0)
		one := n.AddGate(netlist.Const1)
		_ = zero
		_ = one
		for i := 0; i < 60; i++ {
			sz := len(n.Gates)
			f1, f2, f3 := rng.Intn(sz), rng.Intn(sz), rng.Intn(sz)
			switch rng.Intn(9) {
			case 0:
				n.AddGate(netlist.And, f1, f2)
			case 1:
				n.AddGate(netlist.Or, f1, f2)
			case 2:
				n.AddGate(netlist.Xor, f1, f2)
			case 3:
				n.AddGate(netlist.Nand, f1, f2)
			case 4:
				n.AddGate(netlist.Nor, f1, f2)
			case 5:
				n.AddGate(netlist.Xnor, f1, f2)
			case 6:
				n.AddGate(netlist.Not, f1)
			case 7:
				n.AddGate(netlist.Mux, f1, f2, f3)
			case 8:
				n.AddGate(netlist.DFF, f1)
			}
		}
		for i := 0; i < 4; i++ {
			n.AddOutput("y"+string(rune('0'+i)), rng.Intn(len(n.Gates)))
		}
		optEquiv(t, n)
	}
}
