package bench

import (
	"os"
	"testing"

	"factor/internal/shard"
)

// TestShardChildExecBench is not a test: it is the body the shard
// ablation's spawner re-execs the test binary into. shard.ChildMain
// only engages when FACTOR_SHARD_SPEC is set, and never returns when
// it does.
func TestShardChildExecBench(t *testing.T) {
	shard.ChildMain()
	t.Skip("shard-child body; spawned by TestShardAblation")
}

// TestShardAblation runs the scaling ablation on the smallest corpus
// design at shard counts 1 and 2. ShardAblation itself asserts the
// cross-shard-count differential (detections, work counters, digests);
// the test checks the rows are well-formed.
func TestShardAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs child processes; skipped in -short")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	spawn := shard.ExecSpawner(exe, "-test.run", "^TestShardChildExecBench$", "-test.count=1")
	rows, err := ShardAblation(8, 1, []string{"arm_alu"}, []int{1, 2}, spawn)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	for _, r := range rows {
		if r.Designs != 1 || r.Faults == 0 || r.Detected == 0 || r.SimEvents == 0 {
			t.Errorf("degenerate row: %+v", r)
		}
		if r.Sec <= 0 || r.SimEventsPerSec <= 0 {
			t.Errorf("non-positive rates: %+v", r)
		}
	}
	if rows[0].Detected != rows[1].Detected || rows[0].SimEvents != rows[1].SimEvents {
		t.Errorf("shard counts disagree: %+v vs %+v", rows[0], rows[1])
	}
	if got := FormatShard(rows); len(got) == 0 {
		t.Error("FormatShard returned empty table")
	}
}
