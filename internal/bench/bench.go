// Package bench regenerates the evaluation of the FACTOR paper: one
// function per table (Tables 1-6), each returning structured rows that
// cmd/benchtables prints in the paper's row/column format and that
// bench_test.go exercises as Go benchmarks. The workload is the ARM2-
// class benchmark SoC from internal/arm.
//
// Absolute numbers differ from the paper (different host, different
// ARM model, our own ATPG instead of a commercial tool, and the paper's
// numeric table cells did not survive in the available text); the
// comparisons the paper states in prose are what these tables are meant
// to reproduce — see EXPERIMENTS.md.
package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"factor/internal/arm"
	"factor/internal/atpg"
	"factor/internal/core"
	"factor/internal/design"
	"factor/internal/fault"
	"factor/internal/netlist"
	"factor/internal/synth"
)

// Config sets the experiment scale.
type Config struct {
	// Width is the datapath width of the benchmark SoC (default 16).
	Width int
	// ATPGBudget bounds each ATPG run (a per-module CPU budget, like
	// the paper's tool timeouts). Default 10s.
	ATPGBudget time.Duration
	// Seed drives the ATPG random phases.
	Seed int64
	// MaxFrames overrides the time-frame budget (0 = derive).
	MaxFrames int
	// BacktrackLimit for deterministic ATPG (0 = default).
	BacktrackLimit int
	// RandomSequences for the ATPG random phase (0 = default).
	RandomSequences int
	// Workers is the worker count for parallel extraction and ATPG
	// (<= 0 selects runtime.NumCPU()). Table contents are identical for
	// any worker count; only wall-clock timings change.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Width == 0 {
		c.Width = arm.DefaultWidth
	}
	if c.ATPGBudget == 0 {
		c.ATPGBudget = 10 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxFrames == 0 {
		c.MaxFrames = 8
	}
	if c.BacktrackLimit == 0 {
		c.BacktrackLimit = 200
	}
	if c.RandomSequences == 0 {
		c.RandomSequences = 32
	}
	return c
}

func (c Config) atpgOptions() atpg.Options {
	return atpg.Options{
		Seed:            c.Seed,
		TimeBudget:      c.ATPGBudget,
		MaxFrames:       c.MaxFrames,
		BacktrackLimit:  c.BacktrackLimit,
		RandomSequences: c.RandomSequences,
		Workers:         c.Workers,
	}
}

// Context caches the expensive shared artifacts (parsing, analysis and
// full-chip synthesis) across table runs.
type Context struct {
	Cfg    Config
	Design *design.Design
	Full   *netlist.Netlist
	// FullSynthTime is how long the full-chip synthesis took.
	FullSynthTime time.Duration
}

// NewContext prepares the shared state for a configuration.
func NewContext(cfg Config) (*Context, error) {
	cfg = cfg.withDefaults()
	sf, err := arm.Parse()
	if err != nil {
		return nil, err
	}
	d, err := design.Analyze(sf, arm.Top)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	full, err := synth.Synthesize(sf, arm.Top, synth.Options{TopParams: map[string]int64{"W": int64(cfg.Width)}})
	if err != nil {
		return nil, err
	}
	return &Context{Cfg: cfg, Design: d, Full: full.Netlist, FullSynthTime: time.Since(start)}, nil
}

func (c *Context) params() map[string]int64 {
	return map[string]int64{"W": int64(c.Cfg.Width)}
}

// ---------------------------------------------------------------------------
// Table 1: Modules in ARM

// Row1 is one row of Table 1 ("Modules in ARM"): module
// characteristics.
type Row1 struct {
	Module             string
	HierarchyLevel     int
	PrimaryInputs      int // bit-level inputs of the stand-alone module
	PrimaryOutputs     int
	GatesInModule      int
	GatesInSurrounding int // full design minus the module
	StuckAtFaults      int // collapsed stuck-at faults of the module
}

// Table1 gathers module characteristics for every MUT.
func (c *Context) Table1() ([]Row1, error) {
	var rows []Row1
	for _, mut := range arm.MUTs() {
		res, err := arm.SynthesizeModule(mut.Module, c.Cfg.Width)
		if err != nil {
			return nil, err
		}
		nl := res.Netlist
		mutGates, envGates := scopeSplit(c.Full, mut.Path+".")
		_ = mutGates
		rows = append(rows, Row1{
			Module:             mut.Module,
			HierarchyLevel:     mut.Level,
			PrimaryInputs:      len(nl.PIs),
			PrimaryOutputs:     len(nl.POs),
			GatesInModule:      nl.NumGates(),
			GatesInSurrounding: envGates,
			StuckAtFaults:      len(fault.Universe(nl)),
		})
	}
	return rows, nil
}

func scopeSplit(n *netlist.Netlist, prefix string) (in, out int) {
	for _, g := range n.Gates {
		switch g.Kind {
		case netlist.Input, netlist.Const0, netlist.Const1:
			continue
		}
		if strings.HasPrefix(g.Scope, prefix) {
			in++
		} else {
			out++
		}
	}
	return
}

// ---------------------------------------------------------------------------
// Tables 2 and 3: transformed module construction

// Row23 is one row of Table 2/3: constraint extraction and synthesis of
// the transformed module.
type Row23 struct {
	Module           string
	ExtractionTime   time.Duration
	SynthesisTime    time.Duration
	GatesSurrounding int // virtual logic after synthesis
	GateReductionPct float64
	PrimaryInputs    int
	PrimaryOutputs   int
	// ExtractionWork counts traversal steps (a machine-independent
	// extraction-effort measure alongside wall-clock time).
	ExtractionWork int
}

// Table2 runs the flow without composition (flat extraction).
func (c *Context) Table2() ([]Row23, error) { return c.table23(core.ModeFlat) }

// Table3 runs the flow with composition (one extractor shared across
// MUTs so constraints are reused).
func (c *Context) Table3() ([]Row23, error) { return c.table23(core.ModeComposed) }

func (c *Context) table23(mode core.Mode) ([]Row23, error) {
	ext := core.NewExtractor(c.Design, mode)
	muts := arm.MUTs()
	paths := make([]string, len(muts))
	for i, mut := range muts {
		paths[i] = mut.Path
	}
	trs, err := core.TransformAll(context.Background(), ext, paths, c.Full, core.TransformOptions{TopParams: c.params()}, c.Cfg.Workers)
	if err != nil {
		return nil, err
	}
	var rows []Row23
	for i, mut := range muts {
		tr := trs[i]
		rows = append(rows, Row23{
			Module:           mut.Module,
			ExtractionTime:   tr.ExtractTime,
			SynthesisTime:    tr.SynthTime,
			GatesSurrounding: tr.EnvGates,
			GateReductionPct: tr.GateReductionPct,
			PrimaryInputs:    tr.PIs,
			PrimaryOutputs:   tr.POs,
			ExtractionWork:   tr.WorkItems,
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Table 4: raw test generation

// Row4 is one row of Table 4: ATPG at the full-processor level
// targeting the module's faults, versus the stand-alone module.
type Row4 struct {
	Module        string
	ProcLevelCov  float64
	ProcLevelTime time.Duration
	StandAloneCov float64
	StandAlone    time.Duration
}

// Table4 demonstrates the difficulty of raw chip-level ATPG for
// embedded modules.
func (c *Context) Table4() ([]Row4, error) {
	var rows []Row4
	for _, mut := range arm.MUTs() {
		// Processor level: faults inside the MUT scope of the full
		// netlist.
		prefix := mut.Path + "."
		procFaults := fault.UniverseRestrictedTo(c.Full, func(g *netlist.Gate) bool {
			return strings.HasPrefix(g.Scope, prefix)
		})
		start := time.Now()
		procRes := atpg.New(c.Full, c.atpgOpts()).Run(procFaults)
		procTime := time.Since(start)

		// Stand-alone module.
		res, err := arm.SynthesizeModule(mut.Module, c.Cfg.Width)
		if err != nil {
			return nil, err
		}
		saFaults := fault.Universe(res.Netlist)
		start = time.Now()
		saRes := atpg.New(res.Netlist, c.atpgOpts()).Run(saFaults)
		saTime := time.Since(start)

		rows = append(rows, Row4{
			Module:        mut.Module,
			ProcLevelCov:  procRes.Coverage(),
			ProcLevelTime: procTime,
			StandAloneCov: saRes.Coverage(),
			StandAlone:    saTime,
		})
	}
	return rows, nil
}

func (c *Context) atpgOpts() atpg.Options { return c.Cfg.atpgOptions() }

// ---------------------------------------------------------------------------
// Tables 5 and 6: test generation on transformed modules

// Row56 is one row of Table 5/6: ATPG on the transformed module.
type Row56 struct {
	Module      string
	FaultCov    float64
	ATPGEff     float64
	TestGenTime time.Duration
	TotalTime   time.Duration // extraction + synthesis + test generation
	Faults      int
	PIERs       int
}

// Table5 runs ATPG on transformed modules built without composition.
// The conventional flow identifies PIERs only near the chip interface
// (depth 1): it lacks FACTOR's per-level analysis.
func (c *Context) Table5() ([]Row56, error) {
	return c.table56(core.ModeFlat, 1)
}

// Table6 runs ATPG on transformed modules built with composition and
// full-depth PIER exposure (the complete FACTOR methodology).
func (c *Context) Table6() ([]Row56, error) {
	return c.table56(core.ModeComposed, 0)
}

func (c *Context) table56(mode core.Mode, pierDepth int) ([]Row56, error) {
	ext := core.NewExtractor(c.Design, mode)
	muts := arm.MUTs()
	paths := make([]string, len(muts))
	for i, mut := range muts {
		paths[i] = mut.Path
	}
	trs, err := core.TransformAll(context.Background(), ext, paths, c.Full, core.TransformOptions{
		TopParams:    c.params(),
		EnablePIERs:  true,
		PIERMaxDepth: pierDepth,
	}, c.Cfg.Workers)
	if err != nil {
		return nil, err
	}
	var rows []Row56
	for i, mut := range muts {
		tr := trs[i]
		faults := fault.UniverseRestrictedTo(tr.Netlist, tr.MUTFaultFilter())
		start := time.Now()
		res := atpg.New(tr.Netlist, c.atpgOpts()).Run(faults)
		testGen := time.Since(start)
		rows = append(rows, Row56{
			Module:      mut.Module,
			FaultCov:    res.Coverage(),
			ATPGEff:     res.Efficiency(),
			TestGenTime: testGen,
			TotalTime:   tr.ExtractTime + tr.SynthTime + testGen,
			Faults:      len(faults),
			PIERs:       len(tr.PIERs),
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Rendering

// FormatTable1 renders Table 1 in the paper's layout.
func FormatTable1(rows []Row1) string {
	var sb strings.Builder
	sb.WriteString("Table 1. Modules in ARM\n")
	fmt.Fprintf(&sb, "%-16s %5s %5s %5s %8s %12s %9s\n",
		"Module", "Level", "PIs", "POs", "Gates", "Surrounding", "SA-Faults")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %5d %5d %5d %8d %12d %9d\n",
			r.Module, r.HierarchyLevel, r.PrimaryInputs, r.PrimaryOutputs,
			r.GatesInModule, r.GatesInSurrounding, r.StuckAtFaults)
	}
	return sb.String()
}

// FormatTable23 renders Table 2 or 3.
func FormatTable23(title string, rows []Row23) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	fmt.Fprintf(&sb, "%-16s %10s %10s %9s %8s %5s %5s %8s\n",
		"Module", "Extract", "Synth", "EnvGates", "Red%", "PIs", "POs", "Work")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %10s %10s %9d %7.1f%% %5d %5d %8d\n",
			r.Module, fmtDur(r.ExtractionTime), fmtDur(r.SynthesisTime),
			r.GatesSurrounding, r.GateReductionPct, r.PrimaryInputs, r.PrimaryOutputs, r.ExtractionWork)
	}
	return sb.String()
}

// FormatTable4 renders Table 4.
func FormatTable4(rows []Row4) string {
	var sb strings.Builder
	sb.WriteString("Table 4. Raw Test Generation\n")
	fmt.Fprintf(&sb, "%-16s %12s %12s %12s %12s\n",
		"Module", "ProcCov%", "ProcTime", "StdAlCov%", "StdAlTime")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %11.1f%% %12s %11.1f%% %12s\n",
			r.Module, r.ProcLevelCov, fmtDur(r.ProcLevelTime),
			r.StandAloneCov, fmtDur(r.StandAlone))
	}
	return sb.String()
}

// FormatTable56 renders Table 5 or 6.
func FormatTable56(title string, rows []Row56) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	fmt.Fprintf(&sb, "%-16s %9s %9s %12s %12s %7s %6s\n",
		"Module", "Cov%", "Eff%", "TestGen", "Total", "Faults", "PIERs")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %8.1f%% %8.1f%% %12s %12s %7d %6d\n",
			r.Module, r.FaultCov, r.ATPGEff, fmtDur(r.TestGenTime),
			fmtDur(r.TotalTime), r.Faults, r.PIERs)
	}
	return sb.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	case d < time.Second:
		return fmt.Sprintf("%.0fms", float64(d.Milliseconds()))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
