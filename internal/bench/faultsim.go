package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"factor/internal/arm"
	"factor/internal/fault"
	"factor/internal/netlist"
	"factor/internal/synth"
)

// FaultSimRow is one design of the fault-simulation engine ablation:
// the same fault set and stimulus run through the serial two-machine
// reference, the full-evaluation packed simulator and the event-driven
// cone-restricted engine, all single-core. Detected counts must agree
// across engines — the ablation doubles as a differential check.
type FaultSimRow struct {
	Module    string `json:"module"`
	Gates     int    `json:"gates"`
	Faults    int    `json:"faults"`
	Sequences int    `json:"sequences"`
	Cycles    int    `json:"cycles_per_sequence"`
	Detected  int    `json:"detected"`

	SerialSec float64 `json:"serial_sec"`
	PackedSec float64 `json:"packed_sec"`
	EventSec  float64 `json:"event_sec"`

	PackedSpeedup float64 `json:"packed_speedup_vs_serial"`
	EventSpeedup  float64 `json:"event_speedup_vs_packed"`

	// Work counters from the engines' telemetry: gate evaluations per
	// full run of the workload. The packed engine evaluates the whole
	// netlist every cycle; the event engine only the active cones — the
	// ratio is the structural work reduction behind EventSpeedup, and
	// unlike the timing columns it is deterministic.
	PackedEvals  uint64  `json:"packed_gate_evals"`
	EventEvals   uint64  `json:"event_gate_evals"`
	EventsPerSec float64 `json:"event_gate_evals_per_sec"`
}

// FaultSimModules are the seed designs the ablation runs on: two
// stand-alone modules plus the full SoC — the chip-level case (Table 4)
// is where fault simulation dominates ATPG time and where cone
// restriction pays off most. Shared with the BenchmarkAblationFaultSim*
// benchmarks so the Go benchmarks and the JSON export cover the same
// designs.
var FaultSimModules = []string{"arm_alu", "regfile_struct", "arm2_soc"}

// FaultSimWorkload builds the ablation stimulus for one module: the
// collapsed fault universe (uniformly sampled down to maxFaults, so
// deep faults with narrow cones are represented the same as near-input
// ones) and deterministic random sequences. The module name "arm2_soc"
// selects the full benchmark SoC. Exported for reuse by bench_test.go
// so the Go benchmarks and the JSON export measure the same workload.
func FaultSimWorkload(module string, width, maxFaults, nSeqs, cycles int) (*netlist.Netlist, []fault.Fault, []fault.Sequence, error) {
	var nl *netlist.Netlist
	if module == "arm2_soc" {
		sf, err := arm.Parse()
		if err != nil {
			return nil, nil, nil, err
		}
		full, err := synth.Synthesize(sf, arm.Top, synth.Options{TopParams: map[string]int64{"W": int64(width)}})
		if err != nil {
			return nil, nil, nil, err
		}
		nl = full.Netlist
	} else {
		res, err := arm.SynthesizeModule(module, width)
		if err != nil {
			return nil, nil, nil, err
		}
		nl = res.Netlist
	}
	faults := fault.Universe(nl)
	if maxFaults > 0 && len(faults) > maxFaults {
		sampled := make([]fault.Fault, maxFaults)
		stride := float64(len(faults)) / float64(maxFaults)
		for i := range sampled {
			sampled[i] = faults[int(float64(i)*stride)]
		}
		faults = sampled
	}
	seqs := fault.RandomSequences(nl, 0x9E3779B97F4A7C15, nSeqs, cycles)
	return nl, faults, seqs, nil
}

// FaultSimAblation runs the three-engine ablation on the seed designs
// and returns one row per design. reps > 1 re-runs each engine and
// keeps the fastest pass (timing noise suppression); detection counts
// are asserted identical across engines and repetitions.
func FaultSimAblation(width, reps int) ([]FaultSimRow, error) {
	if reps < 1 {
		reps = 1
	}
	var rows []FaultSimRow
	for _, module := range FaultSimModules {
		nl, faults, seqs, err := FaultSimWorkload(module, width, 512, 16, 8)
		if err != nil {
			return nil, err
		}

		packedSec, packedDet := math.Inf(1), -1
		eventSec, eventDet := math.Inf(1), -1
		var packedEvals, eventEvals uint64
		for r := 0; r < reps; r++ {
			res := fault.NewResult(faults)
			ps := fault.NewParallel(nl)
			start := time.Now()
			for _, seq := range seqs {
				ps.RunSequence(res, seq)
			}
			if sec := time.Since(start).Seconds(); sec < packedSec {
				packedSec = sec
			}
			if ev := ps.DrainStats().Events; packedEvals != 0 && ev != packedEvals {
				return nil, fmt.Errorf("faultsim ablation: packed engine work counter nondeterministic on %s", module)
			} else {
				packedEvals = ev
			}
			if d := res.NumDetected(); packedDet >= 0 && d != packedDet {
				return nil, fmt.Errorf("faultsim ablation: packed engine nondeterministic on %s", module)
			} else {
				packedDet = d
			}

			res = fault.NewResult(faults)
			es := fault.NewEvent(nl)
			start = time.Now()
			for _, seq := range seqs {
				es.RunSequence(res, seq)
			}
			if sec := time.Since(start).Seconds(); sec < eventSec {
				eventSec = sec
			}
			if ev := es.DrainStats().Events; eventEvals != 0 && ev != eventEvals {
				return nil, fmt.Errorf("faultsim ablation: event engine work counter nondeterministic on %s", module)
			} else {
				eventEvals = ev
			}
			if d := res.NumDetected(); eventDet >= 0 && d != eventDet {
				return nil, fmt.Errorf("faultsim ablation: event engine nondeterministic on %s", module)
			} else {
				eventDet = d
			}
		}
		if packedDet != eventDet {
			return nil, fmt.Errorf("faultsim ablation: engines disagree on %s: packed detects %d, event detects %d",
				module, packedDet, eventDet)
		}

		serialSec := math.Inf(1)
		for r := 0; r < reps; r++ {
			detected := 0
			start := time.Now()
			for _, f := range faults {
				for _, seq := range seqs {
					if fault.SerialDetect(nl, f, seq) {
						detected++
						break
					}
				}
			}
			if sec := time.Since(start).Seconds(); sec < serialSec {
				serialSec = sec
			}
			if detected != packedDet {
				return nil, fmt.Errorf("faultsim ablation: serial oracle disagrees on %s: serial detects %d, packed detects %d",
					module, detected, packedDet)
			}
		}

		rows = append(rows, FaultSimRow{
			Module:        module,
			Gates:         nl.NumGates(),
			Faults:        len(faults),
			Sequences:     len(seqs),
			Cycles:        len(seqs[0]),
			Detected:      packedDet,
			SerialSec:     serialSec,
			PackedSec:     packedSec,
			EventSec:      eventSec,
			PackedSpeedup: serialSec / packedSec,
			EventSpeedup:  packedSec / eventSec,
			PackedEvals:   packedEvals,
			EventEvals:    eventEvals,
			EventsPerSec:  float64(eventEvals) / eventSec,
		})
	}
	return rows, nil
}

// WriteFaultSimJSON writes the ablation rows as indented JSON to path.
func WriteFaultSimJSON(path string, rows []FaultSimRow) error {
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatFaultSim renders the ablation rows as a table. Work% is the
// event engine's gate evaluations as a share of the packed engine's —
// the deterministic work reduction from active-cone pruning.
func FormatFaultSim(rows []FaultSimRow) string {
	var sb strings.Builder
	sb.WriteString("Fault-simulation engine ablation (single-core)\n")
	fmt.Fprintf(&sb, "%-16s %7s %7s %9s %10s %10s %10s %9s %9s %7s %10s\n",
		"Module", "Gates", "Faults", "Detected", "Serial", "Packed", "Event", "Pk/Ser", "Ev/Pk", "Work%", "Ev-evals/s")
	for _, r := range rows {
		workPct := 0.0
		if r.PackedEvals > 0 {
			workPct = 100 * float64(r.EventEvals) / float64(r.PackedEvals)
		}
		fmt.Fprintf(&sb, "%-16s %7d %7d %9d %9.3fs %9.3fs %9.3fs %8.1fx %8.1fx %6.1f%% %9.2gM\n",
			r.Module, r.Gates, r.Faults, r.Detected,
			r.SerialSec, r.PackedSec, r.EventSec, r.PackedSpeedup, r.EventSpeedup,
			workPct, r.EventsPerSec/1e6)
	}
	return sb.String()
}
