package bench

import (
	"strings"
	"testing"
	"time"
)

// tiny returns a context with a minimal ATPG budget: these tests check
// the harness plumbing and the paper's structural claims, not absolute
// coverage numbers.
func tiny(t *testing.T) *Context {
	t.Helper()
	ctx, err := NewContext(Config{
		ATPGBudget:      400 * time.Millisecond,
		RandomSequences: 8,
		BacktrackLimit:  50,
		MaxFrames:       4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestTable1Shape(t *testing.T) {
	ctx := tiny(t)
	rows, err := ctx.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byName := map[string]Row1{}
	for _, r := range rows {
		byName[r.Module] = r
		if r.GatesInModule <= 0 || r.StuckAtFaults <= 0 || r.GatesInSurrounding <= 0 {
			t.Errorf("%s: empty characteristics %+v", r.Module, r)
		}
		// GatesInModule is the stand-alone synthesis figure while
		// GatesInSurrounding comes from the full-chip netlist, so they
		// do not sum exactly (cross-boundary optimization); but the
		// surrounding logic can never exceed the full design.
		if r.GatesInSurrounding >= ctx.Full.NumGates() {
			t.Errorf("%s: surrounding %d >= full design %d",
				r.Module, r.GatesInSurrounding, ctx.Full.NumGates())
		}
	}
	// regfile_struct is the biggest and deepest module (paper Table 1).
	rf := byName["regfile_struct"]
	for name, r := range byName {
		if name == "regfile_struct" {
			continue
		}
		if r.GatesInModule >= rf.GatesInModule {
			t.Errorf("%s (%d gates) >= regfile_struct (%d)", name, r.GatesInModule, rf.GatesInModule)
		}
		if r.HierarchyLevel > rf.HierarchyLevel {
			t.Errorf("%s deeper than regfile_struct", name)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "regfile_struct") || !strings.Contains(out, "Table 1") {
		t.Errorf("formatting: %s", out)
	}
}

func TestTables2And3Claims(t *testing.T) {
	ctx := tiny(t)
	flat, err := ctx.Table2()
	if err != nil {
		t.Fatal(err)
	}
	composed, err := ctx.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(flat) != len(composed) {
		t.Fatal("row count mismatch")
	}
	for i := range flat {
		f, c := flat[i], composed[i]
		// Claim 1 (both tables): drastic reduction of surrounding logic.
		if f.GateReductionPct < 25 {
			t.Errorf("%s flat reduction %.1f%% not drastic", f.Module, f.GateReductionPct)
		}
		if c.GateReductionPct < 25 {
			t.Errorf("%s composed reduction %.1f%% not drastic", c.Module, c.GateReductionPct)
		}
		// Claim 2: composition produces no larger environments and does
		// no more extraction work.
		if c.GatesSurrounding > f.GatesSurrounding {
			t.Errorf("%s: composed env %d > flat env %d", c.Module, c.GatesSurrounding, f.GatesSurrounding)
		}
		if c.ExtractionWork > f.ExtractionWork {
			t.Errorf("%s: composed work %d > flat work %d", c.Module, c.ExtractionWork, f.ExtractionWork)
		}
	}
	out := FormatTable23("Table 2", flat)
	if !strings.Contains(out, "Red%") {
		t.Errorf("formatting: %s", out)
	}
}

func TestTables56Claims(t *testing.T) {
	if testing.Short() {
		t.Skip("ATPG tables are slow")
	}
	ctx := tiny(t)
	t5, err := ctx.Table5()
	if err != nil {
		t.Fatal(err)
	}
	t6, err := ctx.Table6()
	if err != nil {
		t.Fatal(err)
	}
	cov5 := map[string]float64{}
	for _, r := range t5 {
		cov5[r.Module] = r.FaultCov
		if r.Faults == 0 {
			t.Errorf("%s: no faults targeted", r.Module)
		}
	}
	// Claim: composition gives at-least-comparable coverage everywhere
	// and a clear win on the deepest module. With a tiny budget allow
	// small noise on the easy modules.
	for _, r := range t6 {
		if r.FaultCov+10 < cov5[r.Module] {
			t.Errorf("%s: composed coverage %.1f%% well below flat %.1f%%", r.Module, r.FaultCov, cov5[r.Module])
		}
	}
	out := FormatTable56("Table 6", t6)
	if !strings.Contains(out, "PIERs") {
		t.Errorf("formatting: %s", out)
	}
}

func TestTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("raw ATPG is slow")
	}
	ctx := tiny(t)
	rows, err := ctx.Table4()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Claim: stand-alone test generation dominates chip-level for
		// every embedded module.
		if r.ProcLevelCov > r.StandAloneCov {
			t.Errorf("%s: proc-level coverage %.1f%% exceeds stand-alone %.1f%%",
				r.Module, r.ProcLevelCov, r.StandAloneCov)
		}
	}
	out := FormatTable4(rows)
	if !strings.Contains(out, "ProcCov%") {
		t.Errorf("formatting: %s", out)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Width != 16 || c.ATPGBudget == 0 || c.Seed == 0 || c.MaxFrames == 0 {
		t.Errorf("defaults not applied: %+v", c)
	}
	// Explicit values survive.
	c2 := Config{Width: 24, Seed: 9}.withDefaults()
	if c2.Width != 24 || c2.Seed != 9 {
		t.Errorf("explicit values overridden: %+v", c2)
	}
}

func TestFmtDur(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Microsecond:  "0.50ms",
		42 * time.Millisecond:   "42ms",
		1500 * time.Millisecond: "1.50s",
	}
	for d, want := range cases {
		if got := fmtDur(d); got != want {
			t.Errorf("fmtDur(%v) = %q, want %q", d, got, want)
		}
	}
}
