package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
	"time"

	"factor/internal/shard"
)

// ShardRow is one shard count of the multi-process scaling ablation:
// the whole seed-design corpus fault-simulated end to end (full
// collapsed universe, first detections) split across that many re-exec'd
// shard processes. Detected counts and first-detection digests are
// asserted identical across shard counts — the scaling table doubles as
// a byte-identity differential check.
type ShardRow struct {
	Shards  int `json:"shards"`
	Designs int `json:"designs"`
	Faults  int `json:"faults"`

	Detected int     `json:"detected"`
	Coverage float64 `json:"fault_coverage"`

	Sec           float64 `json:"sec"`
	DesignsPerSec float64 `json:"designs_per_sec"`

	// SimEvents is the shard-invariant gate-evaluation count summed over
	// the corpus — identical for every shard count by construction.
	SimEvents       uint64  `json:"sim_events"`
	SimEventsPerSec float64 `json:"sim_events_per_sec"`
}

// ShardCounts is the default shard sweep of ShardAblation.
var ShardCounts = []int{1, 2, 4}

// shardDesign is one prepared corpus entry: the snapshot on disk plus
// the workload parameters every shard count replays identically.
type shardDesign struct {
	module   string
	snapshot string
	faults   int
}

// ShardAblation measures multi-process scaling of sharded first-
// detection fault simulation over the seed-design corpus. Each design
// is snapshotted once; every shard count then replays the identical
// workload through spawn (which must land in shard.ChildMain — e.g.
// shard.SelfExecSpawner from a binary that calls ChildMain first).
// Workers per shard is pinned to 1 so the shard count is the only
// parallelism dimension. reps > 1 keeps the fastest pass per shard
// count; detections and digests are asserted identical across every
// rep and shard count. nil modules / shardCounts select the defaults.
func ShardAblation(width, reps int, modules []string, shardCounts []int, spawn shard.Spawner) ([]ShardRow, error) {
	if reps < 1 {
		reps = 1
	}
	if modules == nil {
		modules = FaultSimModules
	}
	if shardCounts == nil {
		shardCounts = ShardCounts
	}
	const nSeqs, cycles = 16, 8
	const seed = 0x9E3779B97F4A7C15

	dir, err := os.MkdirTemp("", "factor-shard-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var designs []shardDesign
	for i, module := range modules {
		nl, faults, _, err := FaultSimWorkload(module, width, 0, nSeqs, cycles)
		if err != nil {
			return nil, err
		}
		snap := fmt.Sprintf("%s/design%d.snap", dir, i)
		if err := nl.WriteSnapshotFile(snap); err != nil {
			return nil, err
		}
		designs = append(designs, shardDesign{module: module, snapshot: snap, faults: len(faults)})
	}

	var rows []ShardRow
	var refDetected int
	var refDigests []string
	var refEvents uint64
	for _, shards := range shardCounts {
		best := math.Inf(1)
		var detected int
		var events uint64
		var digests []string
		for r := 0; r < reps; r++ {
			detected, events = 0, 0
			digests = digests[:0]
			start := time.Now()
			for _, d := range designs {
				res := shard.Run(context.Background(), shard.Options{
					Shards:   shards,
					Workers:  1,
					Seqs:     nSeqs,
					Cycles:   cycles,
					Seed:     seed,
					Module:   d.module,
					Snapshot: d.snapshot,
				}, d.faults, spawn)
				if len(res.Died) != 0 || len(res.Errors) != 0 {
					return nil, fmt.Errorf("shard ablation: %s at shards=%d degraded: %v", d.module, shards, res.Errors)
				}
				detected += res.Detected()
				events += res.Work.Events
				digests = append(digests, shard.DigestFirst(res.First))
			}
			if sec := time.Since(start).Seconds(); sec < best {
				best = sec
			}
		}
		if refDigests == nil {
			refDetected, refDigests, refEvents = detected, digests, events
		} else {
			if detected != refDetected || events != refEvents {
				return nil, fmt.Errorf("shard ablation: shards=%d disagrees with shards=%d: detected %d vs %d, events %d vs %d",
					shards, shardCounts[0], detected, refDetected, events, refEvents)
			}
			for i := range digests {
				if digests[i] != refDigests[i] {
					return nil, fmt.Errorf("shard ablation: %s first-detection digest differs at shards=%d: %s vs %s",
						designs[i].module, shards, digests[i], refDigests[i])
				}
			}
		}

		total := 0
		for _, d := range designs {
			total += d.faults
		}
		rows = append(rows, ShardRow{
			Shards:          shards,
			Designs:         len(designs),
			Faults:          total,
			Detected:        detected,
			Coverage:        float64(detected) / float64(total),
			Sec:             best,
			DesignsPerSec:   float64(len(designs)) / best,
			SimEvents:       events,
			SimEventsPerSec: float64(events) / best,
		})
	}
	return rows, nil
}

// WriteShardJSON writes the scaling rows as indented JSON to path.
func WriteShardJSON(path string, rows []ShardRow) error {
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatShard renders the scaling rows as a table.
func FormatShard(rows []ShardRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Sharded fault-simulation scaling (workers/shard=1, %d designs)\n", rows[0].Designs)
	fmt.Fprintf(&sb, "%7s %7s %9s %9s %10s %12s %14s\n",
		"Shards", "Faults", "Detected", "Cov", "Wall", "Designs/s", "SimEvents/s")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%7d %7d %9d %8.1f%% %9.3fs %12.2f %13.2fM\n",
			r.Shards, r.Faults, r.Detected, 100*r.Coverage, r.Sec, r.DesignsPerSec, r.SimEventsPerSec/1e6)
	}
	return sb.String()
}
