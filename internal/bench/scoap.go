package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"factor/internal/arm"
	"factor/internal/atpg"
	"factor/internal/fault"
)

// ScoapRow is one design of the guided-PODEM ablation: the same fault
// universe pushed through the deterministic phase twice — once with the
// default distance-based backtrace costs, once with the SCOAP metrics
// from internal/testability — with the random phase disabled so every
// fault exercises the search. Backtracks and decisions are the engine's
// deterministic work counters (identical for any worker count); the
// timing columns are diagnostic only.
type ScoapRow struct {
	Module string `json:"module"`
	Gates  int    `json:"gates"`
	Faults int    `json:"faults"`
	Frames int    `json:"frames"`
	Limit  int    `json:"backtrack_limit"`

	DefaultDetected   int    `json:"default_detected"`
	DefaultUntestable int    `json:"default_untestable"`
	DefaultAborted    int    `json:"default_aborted"`
	DefaultDecisions  uint64 `json:"default_decisions"`
	DefaultBacktracks uint64 `json:"default_backtracks"`

	ScoapDetected   int    `json:"scoap_detected"`
	ScoapUntestable int    `json:"scoap_untestable"`
	ScoapAborted    int    `json:"scoap_aborted"`
	ScoapDecisions  uint64 `json:"scoap_decisions"`
	ScoapBacktracks uint64 `json:"scoap_backtracks"`

	// BacktrackDeltaPct is the backtrack reduction of the guided run
	// relative to the default run (positive = fewer backtracks).
	BacktrackDeltaPct float64 `json:"backtrack_delta_pct"`

	DefaultSec float64 `json:"default_sec"`
	ScoapSec   float64 `json:"scoap_sec"`
}

// ScoapModules are the stand-alone seed designs the ablation runs on.
// regfile_struct is deliberately absent: its deterministic phase takes
// minutes per run and the SCOAP guide is cost-neutral there, so it adds
// wall-clock without adding signal. The whole ablation over this list
// finishes in a few seconds, which keeps it runnable in CI.
var ScoapModules = []string{"arm_alu", "exc", "forward"}

// Fixed search budget for the ablation. Frames is kept small and the
// backtrack limit high enough that the interesting design (forward)
// completes every search under both guides — with zero aborts the
// detected/untestable splits must agree and the backtrack column is a
// pure measure of search-ordering quality.
const (
	scoapFrames = 4
	scoapLimit  = 500
)

// ScoapAblation runs the default-vs-SCOAP guided PODEM comparison on
// the seed designs. The work counters are deterministic, so unlike the
// timing ablation there is no repetition/min-of-N machinery; reruns
// reproduce the table bit for bit.
func ScoapAblation(width, workers int) ([]ScoapRow, error) {
	var rows []ScoapRow
	for _, module := range ScoapModules {
		res, err := arm.SynthesizeModule(module, width)
		if err != nil {
			return nil, err
		}
		nl := res.Netlist
		faults := fault.Universe(nl)
		base := atpg.Options{
			Seed:               1,
			MaxFrames:          scoapFrames,
			BacktrackLimit:     scoapLimit,
			DisableRandomPhase: true,
			Workers:            workers,
		}

		start := time.Now()
		def := atpg.New(nl, base).Run(faults)
		defSec := time.Since(start).Seconds()

		guided := base
		guided.Guide = atpg.GuideSCOAP
		start = time.Now()
		sc := atpg.New(nl, guided).Run(faults)
		scSec := time.Since(start).Seconds()

		if len(def.Errors) > 0 || len(sc.Errors) > 0 {
			return nil, fmt.Errorf("scoap ablation: worker errors on %s", module)
		}

		delta := 0.0
		if def.Stats.Backtracks > 0 {
			delta = 100 * (float64(def.Stats.Backtracks) - float64(sc.Stats.Backtracks)) / float64(def.Stats.Backtracks)
		}
		rows = append(rows, ScoapRow{
			Module: module,
			Gates:  nl.NumGates(),
			Faults: len(faults),
			Frames: scoapFrames,
			Limit:  scoapLimit,

			DefaultDetected:   def.Result.NumDetected(),
			DefaultUntestable: def.UntestableNum,
			DefaultAborted:    def.AbortedNum,
			DefaultDecisions:  def.Stats.Decisions,
			DefaultBacktracks: def.Stats.Backtracks,

			ScoapDetected:   sc.Result.NumDetected(),
			ScoapUntestable: sc.UntestableNum,
			ScoapAborted:    sc.AbortedNum,
			ScoapDecisions:  sc.Stats.Decisions,
			ScoapBacktracks: sc.Stats.Backtracks,

			BacktrackDeltaPct: delta,

			DefaultSec: defSec,
			ScoapSec:   scSec,
		})
	}
	return rows, nil
}

// WriteScoapJSON writes the ablation rows as indented JSON to path.
func WriteScoapJSON(path string, rows []ScoapRow) error {
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatScoap renders the ablation rows as a table. BtΔ% is the
// backtrack reduction of the guided run (positive = guided searches
// backtrack less).
func FormatScoap(rows []ScoapRow) string {
	var sb strings.Builder
	sb.WriteString("Guided-PODEM ablation (random phase disabled)\n")
	fmt.Fprintf(&sb, "%-16s %7s %7s %10s %10s %7s %10s %10s %7s %7s\n",
		"Module", "Gates", "Faults", "Def-det", "Def-bt", "Def-ab", "Scoap-det", "Scoap-bt", "Sc-ab", "BtΔ%")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %7d %7d %10d %10d %7d %10d %10d %7d %+6.2f%%\n",
			r.Module, r.Gates, r.Faults,
			r.DefaultDetected, r.DefaultBacktracks, r.DefaultAborted,
			r.ScoapDetected, r.ScoapBacktracks, r.ScoapAborted,
			r.BacktrackDeltaPct)
	}
	return sb.String()
}
