package atpg

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"

	"factor/internal/factorerr"
	"factor/internal/fault"
)

// CheckpointVersion is the journal format version. Decoding rejects
// other versions rather than guessing at field semantics.
//
// Version history: 1 = initial format; 2 = added the "stats"
// deterministic work counters (RunStats), restored on resume so
// counter totals stay split-invariant.
const CheckpointVersion = 2

// Checkpoint is a resumable journal of an ATPG run, written during the
// deterministic phase (see Options.Checkpoint). It captures everything
// the merge replay needs to continue bit-identically:
//
//   - PostRandom is the detected bitmap at the end of the random phase.
//     It alone determines the deterministic-phase pending list, whose
//     order the merger replays.
//   - Detected is the canonical detected bitmap at the journal point
//     (PostRandom plus every merged deterministic test's detections).
//   - Merged counts the pending-list entries the merger has fully
//     processed; resume skips exactly that prefix.
//   - Tests holds every kept sequence so far (random + deterministic).
//
// Because the deterministic merge replays serial semantics strictly in
// fault-list order and every random fill draws from a per-fault-index
// RNG stream, continuing from (PostRandom, Detected, Merged) yields the
// same final result as the uninterrupted run — for any worker count on
// either side of the interruption. The random phase is never
// journaled: interrupted before the deterministic phase, a run simply
// re-executes the (deterministic, seeded) random phase from scratch.
type Checkpoint struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`

	PostRandom []bool           `json:"post_random"`
	Detected   []bool           `json:"detected"`
	Merged     int              `json:"merged"`
	Tests      []fault.Sequence `json:"tests"`

	DetectedRandom int `json:"detected_random"`
	DetectedDet    int `json:"detected_det"`
	UntestableNum  int `json:"untestable"`
	AbortedNum     int `json:"aborted"`
	NotAttempted   int `json:"not_attempted"`
	QuarantinedNum int `json:"quarantined"`

	// Stats journals the deterministic work counters at the merge
	// position, so a resumed run's totals equal the uninterrupted
	// run's.
	Stats RunStats `json:"stats"`

	Errors []CheckpointError `json:"errors,omitempty"`
}

// CheckpointError is the journaled form of a quarantine error. Stacks
// are dropped; the rendered message and fault identity survive resume.
type CheckpointError struct {
	Fault   string `json:"fault,omitempty"`
	Message string `json:"message"`
}

// Encode writes the checkpoint as JSON.
func (ck *Checkpoint) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(ck)
}

// DecodeCheckpoint reads a checkpoint written by Encode.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	ck := &Checkpoint{}
	if err := json.NewDecoder(r).Decode(ck); err != nil {
		return nil, factorerr.Wrap(factorerr.StageATPG, factorerr.CodeCheckpoint, err)
	}
	if ck.Version != CheckpointVersion {
		return nil, factorerr.New(factorerr.StageATPG, factorerr.CodeCheckpoint,
			"checkpoint version %d, want %d", ck.Version, CheckpointVersion)
	}
	return ck, nil
}

// WriteFile atomically replaces path with the encoded checkpoint
// (write to a temp file in the same directory, fsync, rename) so a
// crash mid-write never leaves a truncated journal behind.
func (ck *Checkpoint) WriteFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeCheckpoint, err)
	}
	defer os.Remove(tmp.Name())
	if err := ck.Encode(tmp); err == nil {
		err = tmp.Sync()
	} else {
		tmp.Close()
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeCheckpoint, err)
	}
	if err := tmp.Close(); err != nil {
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeCheckpoint, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeCheckpoint, err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint file written by WriteFile.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, factorerr.Wrap(factorerr.StageIO, factorerr.CodeCheckpoint, err)
	}
	defer f.Close()
	return DecodeCheckpoint(f)
}

// fingerprint hashes everything that determines the run's outcome:
// netlist structure, the result-shaping options (Workers and TimeBudget
// excluded — both are free to change across a resume), and the fault
// list. A checkpoint is only valid against an identical fingerprint.
func (e *Engine) fingerprint(faults []fault.Fault) string {
	h := fnv.New64a()
	put := func(v int64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		h.Write(b[:])
	}
	puts := func(s string) {
		put(int64(len(s)))
		io.WriteString(h, s)
	}

	puts(e.nl.Name)
	put(int64(len(e.nl.Gates)))
	for _, g := range e.nl.Gates {
		put(int64(g.Kind))
		put(int64(len(g.Fanin)))
		for _, f := range g.Fanin {
			put(int64(f))
		}
	}
	for _, name := range e.nl.PINames {
		puts(name)
	}
	for _, po := range e.nl.POs {
		put(int64(po))
	}

	o := e.opts
	put(int64(o.MaxFrames))
	put(int64(o.BacktrackLimit))
	put(int64(o.RandomSequences))
	put(int64(o.RandomSeqLen))
	put(o.Seed)
	if o.DisableRandomPhase {
		put(1)
	} else {
		put(0)
	}
	// The guide changes which sequences deterministic search emits, so
	// a journal is only replayable under the same guide. GuideDefault
	// hashes as 0, keeping pre-guide fingerprints stable.
	put(int64(o.Guide))

	put(int64(len(faults)))
	for _, f := range faults {
		put(int64(f.Gate))
		put(int64(f.Pin))
		if f.SAOne {
			put(1)
		} else {
			put(0)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// validate checks a checkpoint against the engine and fault list it is
// about to resume.
func (ck *Checkpoint) validate(fingerprint string, nfaults int) error {
	if ck.Fingerprint != fingerprint {
		return factorerr.New(factorerr.StageATPG, factorerr.CodeCheckpoint,
			"checkpoint fingerprint %s does not match this netlist/options/fault list (%s)",
			ck.Fingerprint, fingerprint)
	}
	if len(ck.PostRandom) != nfaults || len(ck.Detected) != nfaults {
		return factorerr.New(factorerr.StageATPG, factorerr.CodeCheckpoint,
			"checkpoint bitmap length %d/%d, want %d", len(ck.PostRandom), len(ck.Detected), nfaults)
	}
	pending := 0
	for i, d := range ck.PostRandom {
		if !d {
			pending++
		}
		if d && !ck.Detected[i] {
			return factorerr.New(factorerr.StageATPG, factorerr.CodeCheckpoint,
				"checkpoint detected bitmap lost fault %d from the post-random set", i)
		}
	}
	if ck.Merged < 0 || ck.Merged > pending {
		return factorerr.New(factorerr.StageATPG, factorerr.CodeCheckpoint,
			"checkpoint merge position %d outside pending list of %d", ck.Merged, pending)
	}
	return nil
}
