package atpg

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"factor/internal/factorerr"
	"factor/internal/failpoint"
	"factor/internal/fault"
)

// CheckpointVersion is the journal format version. Decoding rejects
// other versions rather than guessing at field semantics.
//
// Version history: 1 = initial JSON format; 2 = added the "stats"
// deterministic work counters (RunStats), restored on resume so
// counter totals stay split-invariant; 3 = framed format — a header
// carrying a generation counter, the payload length, and a CRC32 of
// the payload, so a torn or corrupt file is detected at load instead
// of being half-trusted, plus the previous-good backup journal
// (path.prev) that LoadLatest falls back to.
const CheckpointVersion = 3

// BackupSuffix is appended to the journal path for the previous-good
// generation kept by WriteFile's rotation.
const BackupSuffix = ".prev"

// frameMagic opens every v3 checkpoint frame header.
const frameMagic = "FACTORCKPT"

// Bounded retry-with-backoff for checkpoint writes: transient errors
// (injected ones, and real EINTR/ENOSPC-class blips a long-running
// server sees) are retried writeAttempts times with a doubling
// backoff starting at writeBackoff before the run is failed.
const (
	writeAttempts = 3
	writeBackoff  = time.Millisecond
)

// Checkpoint is a resumable journal of an ATPG run, written during the
// deterministic phase (see Options.Checkpoint). It captures everything
// the merge replay needs to continue bit-identically:
//
//   - PostRandom is the detected bitmap at the end of the random phase.
//     It alone determines the deterministic-phase pending list, whose
//     order the merger replays.
//   - Detected is the canonical detected bitmap at the journal point
//     (PostRandom plus every merged deterministic test's detections).
//   - Merged counts the pending-list entries the merger has fully
//     processed; resume skips exactly that prefix.
//   - Tests holds every kept sequence so far (random + deterministic).
//
// Because the deterministic merge replays serial semantics strictly in
// fault-list order and every random fill draws from a per-fault-index
// RNG stream, continuing from (PostRandom, Detected, Merged) yields the
// same final result as the uninterrupted run — for any worker count on
// either side of the interruption. The random phase is never
// journaled: interrupted before the deterministic phase, a run simply
// re-executes the (deterministic, seeded) random phase from scratch.
type Checkpoint struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`

	// Generation is the frame's monotonic flush counter, assigned by
	// the Journal writer; the backup file holds generation-1. It is
	// presentation state (which frame is newer), never part of the
	// deterministic result, so resuming from generation G or G-1 of
	// the same run yields the same final output.
	Generation uint64 `json:"generation"`

	PostRandom []bool           `json:"post_random"`
	Detected   []bool           `json:"detected"`
	Merged     int              `json:"merged"`
	Tests      []fault.Sequence `json:"tests"`

	DetectedRandom int `json:"detected_random"`
	DetectedDet    int `json:"detected_det"`
	UntestableNum  int `json:"untestable"`
	AbortedNum     int `json:"aborted"`
	NotAttempted   int `json:"not_attempted"`
	QuarantinedNum int `json:"quarantined"`

	// Stats journals the deterministic work counters at the merge
	// position, so a resumed run's totals equal the uninterrupted
	// run's.
	Stats RunStats `json:"stats"`

	Errors []CheckpointError `json:"errors,omitempty"`
}

// CheckpointError is the journaled form of a quarantine error. Stacks
// are dropped; the rendered message and fault identity survive resume.
type CheckpointError struct {
	Fault   string `json:"fault,omitempty"`
	Message string `json:"message"`
}

func corruptErr(format string, args ...interface{}) error {
	return factorerr.New(factorerr.StageATPG, factorerr.CodeCheckpointCorrupt, format, args...)
}

// Encode writes the checkpoint as one v3 frame: a header line
//
//	FACTORCKPT <version> <generation> <payload-len> <crc32-hex>\n
//
// followed by exactly payload-len bytes of JSON. The CRC32 (IEEE) is
// over the payload, so any torn write — a truncated payload, a
// half-replaced file, a bit flip — fails loudly at decode instead of
// resuming from silently wrong state.
func (ck *Checkpoint) Encode(w io.Writer) error {
	payload, err := json.Marshal(ck)
	if err != nil {
		return factorerr.Wrap(factorerr.StageATPG, factorerr.CodeCheckpoint, err)
	}
	payload = append(payload, '\n')
	header := fmt.Sprintf("%s %d %d %d %08x\n",
		frameMagic, ck.Version, ck.Generation, len(payload), crc32.ChecksumIEEE(payload))
	if _, err := io.WriteString(w, header); err != nil {
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeCheckpoint, err)
	}
	if _, err := w.Write(payload); err != nil {
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeCheckpoint, err)
	}
	return nil
}

// DecodeCheckpoint reads a frame written by Encode, verifying the
// header shape, payload length and CRC before trusting any field.
// Failures are classified: CodeCheckpointVersion for a frame from a
// different format version, CodeCheckpointCorrupt for anything torn or
// inconsistent — callers (and exit codes) can tell "delete and
// restart" from "wrong tool build" from "wrong design" (the latter is
// validate's CodeCheckpointMismatch).
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReader(r)
	header, err := br.ReadString('\n')
	if err != nil {
		return nil, corruptErr("checkpoint header unreadable: %v", err)
	}
	var magic string
	var version int
	var gen, plen uint64
	var crc uint32
	if _, err := fmt.Sscanf(header, "%s %d %d %d %08x", &magic, &version, &gen, &plen, &crc); err != nil || magic != frameMagic {
		return nil, corruptErr("checkpoint header %q is not a %s frame", strings.TrimSpace(header), frameMagic)
	}
	if version != CheckpointVersion {
		return nil, factorerr.New(factorerr.StageATPG, factorerr.CodeCheckpointVersion,
			"checkpoint format version %d, want %d", version, CheckpointVersion)
	}
	if plen > 1<<32 {
		return nil, corruptErr("checkpoint payload length %d is implausible", plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, corruptErr("checkpoint payload truncated: %v", err)
	}
	if got := crc32.ChecksumIEEE(payload); got != crc {
		return nil, corruptErr("checkpoint CRC mismatch: frame %08x, payload %08x", crc, got)
	}
	ck := &Checkpoint{}
	if err := json.Unmarshal(payload, ck); err != nil {
		return nil, corruptErr("checkpoint payload undecodable: %v", err)
	}
	if ck.Version != CheckpointVersion {
		return nil, factorerr.New(factorerr.StageATPG, factorerr.CodeCheckpointVersion,
			"checkpoint version %d, want %d", ck.Version, CheckpointVersion)
	}
	if ck.Generation != gen {
		return nil, corruptErr("checkpoint generation %d disagrees with frame header %d", ck.Generation, gen)
	}
	return ck, nil
}

// WriteFile durably replaces path with the encoded checkpoint and
// rotates the previous generation to path+BackupSuffix. The sequence
// is crash-ordered so that at every instruction boundary at least one
// of (path, path.prev) holds a complete previous-or-current frame:
//
//  1. write the frame to a temp file in the same directory, fsync it;
//  2. rename the current path (if any) to path.prev — the
//     previous-good generation LoadLatest falls back to;
//  3. rename the temp file onto path;
//  4. fsync the containing directory, so the renames themselves — not
//     just the data — survive a power cut.
//
// Transient failures (injected, or EINTR/ENOSPC-class blips) are
// retried writeAttempts times with doubling backoff; the last error is
// returned when the budget is exhausted. Failpoint sites:
// atpg.checkpoint.encode/.sync/.backup/.rename/.dirsync.
func (ck *Checkpoint) WriteFile(path string) error {
	var last error
	backoff := writeBackoff
	for attempt := 0; attempt < writeAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		if last = ck.writeFileOnce(path); last == nil {
			return nil
		}
	}
	return last
}

// writeFileOnce is one durable write attempt (see WriteFile).
func (ck *Checkpoint) writeFileOnce(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeCheckpoint, err)
	}
	defer os.Remove(tmp.Name())
	err = failpoint.Hit("atpg.checkpoint.encode")
	if err == nil {
		err = ck.Encode(tmp)
	}
	if err == nil {
		if err = failpoint.Hit("atpg.checkpoint.sync"); err == nil {
			err = tmp.Sync()
		}
	}
	if err != nil {
		tmp.Close()
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeCheckpoint, err)
	}
	if err := tmp.Close(); err != nil {
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeCheckpoint, err)
	}
	// Rotate the current head to the previous-good backup. A crash
	// between this rename and the next leaves no head at all — which
	// LoadLatest treats exactly like a corrupt head and serves the
	// backup.
	if err := failpoint.Hit("atpg.checkpoint.backup"); err != nil {
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeCheckpoint, err)
	}
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, path+BackupSuffix); err != nil {
			return factorerr.Wrap(factorerr.StageIO, factorerr.CodeCheckpoint, err)
		}
	}
	if err := failpoint.Hit("atpg.checkpoint.rename"); err != nil {
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeCheckpoint, err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeCheckpoint, err)
	}
	// fsync the directory so the renames are on disk: without this the
	// file data is durable but the directory entry replacement may not
	// be, and a crash can resurrect the old (or no) journal.
	if err := failpoint.Hit("atpg.checkpoint.dirsync"); err != nil {
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeCheckpoint, err)
	}
	if err := syncDir(dir); err != nil {
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeCheckpoint, err)
	}
	return nil
}

// syncDir fsyncs a directory; platforms that refuse to fsync
// directories (some filesystems return EINVAL) are treated as best
// effort, matching what databases do.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}

// LoadCheckpoint reads the checkpoint file at path (the head journal
// only — no backup fallback; use LoadLatest for the recovery policy).
func LoadCheckpoint(path string) (*Checkpoint, error) {
	if err := failpoint.Hit("atpg.checkpoint.load"); err != nil {
		return nil, factorerr.Wrap(factorerr.StageIO, factorerr.CodeCheckpoint, err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, factorerr.Wrap(factorerr.StageIO, factorerr.CodeCheckpoint, err)
	}
	defer f.Close()
	return DecodeCheckpoint(f)
}

// LoadLatest implements the crash-recovery policy over the journal
// pair WriteFile maintains: load the head at path; if the head is
// missing or fails frame validation (torn write, CRC mismatch,
// undecodable payload), fall back one generation to path+BackupSuffix.
// The boolean reports whether the backup was served. A version
// mismatch is NOT recovered — the backup was written by the same tool
// and would only mask the real problem — and when both frames are bad
// the head's error is returned (the backup's is secondary).
func LoadLatest(path string) (*Checkpoint, bool, error) {
	ck, err := LoadCheckpoint(path)
	if err == nil {
		return ck, false, nil
	}
	if !errors.Is(err, os.ErrNotExist) && !errors.Is(err, &factorerr.Error{Code: factorerr.CodeCheckpointCorrupt}) {
		return nil, false, err
	}
	prev, perr := LoadCheckpoint(path + BackupSuffix)
	if perr != nil {
		return nil, false, err
	}
	return prev, true, nil
}

// Journal writes a run's checkpoints to a file with monotonic
// generation numbering and previous-good backup rotation. Use its
// Flush as Options.Checkpoint:
//
//	j := atpg.NewJournal(path)
//	opts.Checkpoint = j.Flush
type Journal struct {
	path string
	gen  uint64
}

// NewJournal opens a journal writer on path. If a loadable frame
// already exists there (a resume writing back to the same journal),
// generation numbering continues after it; otherwise it starts at 1.
func NewJournal(path string) *Journal {
	j := &Journal{path: path}
	if ck, _, err := LoadLatest(path); err == nil {
		j.gen = ck.Generation
	}
	return j
}

// Flush stamps the next generation onto ck and durably writes it (see
// WriteFile for the crash ordering and retry policy).
func (j *Journal) Flush(ck *Checkpoint) error {
	j.gen++
	ck.Generation = j.gen
	return ck.WriteFile(j.path)
}

// fingerprint hashes everything that determines the run's outcome:
// netlist structure, the result-shaping options (Workers and TimeBudget
// excluded — both are free to change across a resume), and the fault
// list. A checkpoint is only valid against an identical fingerprint.
func (e *Engine) fingerprint(faults []fault.Fault) string {
	h := fnv.New64a()
	put := func(v int64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		h.Write(b[:])
	}
	puts := func(s string) {
		put(int64(len(s)))
		io.WriteString(h, s)
	}

	puts(e.nl.Name)
	put(int64(len(e.nl.Gates)))
	for _, g := range e.nl.Gates {
		put(int64(g.Kind))
		put(int64(len(g.Fanin)))
		for _, f := range g.Fanin {
			put(int64(f))
		}
	}
	for _, name := range e.nl.PINames {
		puts(name)
	}
	for _, po := range e.nl.POs {
		put(int64(po))
	}

	o := e.opts
	put(int64(o.MaxFrames))
	put(int64(o.BacktrackLimit))
	put(int64(o.RandomSequences))
	put(int64(o.RandomSeqLen))
	put(o.Seed)
	if o.DisableRandomPhase {
		put(1)
	} else {
		put(0)
	}
	// The guide changes which sequences deterministic search emits, so
	// a journal is only replayable under the same guide. GuideDefault
	// hashes as 0, keeping pre-guide fingerprints stable.
	put(int64(o.Guide))

	put(int64(len(faults)))
	for _, f := range faults {
		put(int64(f.Gate))
		put(int64(f.Pin))
		if f.SAOne {
			put(1)
		} else {
			put(0)
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// validate checks a checkpoint against the engine and fault list it is
// about to resume. A fingerprint or shape mismatch is classified
// CodeCheckpointMismatch (the journal belongs to a different design or
// option set); an internally inconsistent journal is
// CodeCheckpointCorrupt.
func (ck *Checkpoint) validate(fingerprint string, nfaults int) error {
	if ck.Fingerprint != fingerprint {
		return factorerr.New(factorerr.StageATPG, factorerr.CodeCheckpointMismatch,
			"checkpoint fingerprint %s does not match this netlist/options/fault list (%s)",
			ck.Fingerprint, fingerprint)
	}
	if len(ck.PostRandom) != nfaults || len(ck.Detected) != nfaults {
		return factorerr.New(factorerr.StageATPG, factorerr.CodeCheckpointMismatch,
			"checkpoint bitmap length %d/%d, want %d", len(ck.PostRandom), len(ck.Detected), nfaults)
	}
	pending := 0
	for i, d := range ck.PostRandom {
		if !d {
			pending++
		}
		if d && !ck.Detected[i] {
			return factorerr.New(factorerr.StageATPG, factorerr.CodeCheckpointCorrupt,
				"checkpoint detected bitmap lost fault %d from the post-random set", i)
		}
	}
	if ck.Merged < 0 || ck.Merged > pending {
		return factorerr.New(factorerr.StageATPG, factorerr.CodeCheckpointCorrupt,
			"checkpoint merge position %d outside pending list of %d", ck.Merged, pending)
	}
	return nil
}
