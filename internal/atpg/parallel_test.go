package atpg

import (
	"math/rand"
	"reflect"
	"testing"

	"factor/internal/arm"
	"factor/internal/fault"
	"factor/internal/netlist"
)

// runsEqual compares everything the determinism contract promises:
// detection marks, the test set (content and order), and the phase
// counters.
func runsEqual(t *testing.T, name string, a, b *RunResult) {
	t.Helper()
	if !reflect.DeepEqual(a.Result.Detected, b.Result.Detected) {
		t.Errorf("%s: detection marks diverge", name)
	}
	if !reflect.DeepEqual(a.Tests, b.Tests) {
		t.Errorf("%s: test sequences diverge (%d vs %d)", name, len(a.Tests), len(b.Tests))
	}
	if a.DetectedRandom != b.DetectedRandom || a.DetectedDet != b.DetectedDet ||
		a.UntestableNum != b.UntestableNum || a.AbortedNum != b.AbortedNum ||
		a.NotAttempted != b.NotAttempted {
		t.Errorf("%s: counters diverge: %+v vs %+v", name,
			[5]int{a.DetectedRandom, a.DetectedDet, a.UntestableNum, a.AbortedNum, a.NotAttempted},
			[5]int{b.DetectedRandom, b.DetectedDet, b.UntestableNum, b.AbortedNum, b.NotAttempted})
	}
	if a.Coverage() != b.Coverage() {
		t.Errorf("%s: coverage diverges: %v vs %v", name, a.Coverage(), b.Coverage())
	}
	// The deterministic work counters must be split- and worker-
	// invariant too. JournaledTests is masked out here: the compared
	// legs legitimately differ in whether checkpointing was enabled at
	// all (the conformance harness checks it with matched callbacks).
	sa, sb := a.Stats, b.Stats
	sa.JournaledTests, sb.JournaledTests = 0, 0
	if sa != sb {
		t.Errorf("%s: work counter stats diverge:\n a: %+v\n b: %+v", name, a.Stats, b.Stats)
	}
}

// randomSeqCircuit mirrors the fault package's random circuit builder:
// enough gates for multi-chunk scheduling, with flip-flops.
func randomSeqCircuit(rng *rand.Rand, nIn, nGates int) *netlist.Netlist {
	n := netlist.New("rand")
	for i := 0; i < nIn; i++ {
		n.AddInput(string(rune('a' + i)))
	}
	for i := 0; i < nGates; i++ {
		sz := len(n.Gates)
		f1, f2, f3 := rng.Intn(sz), rng.Intn(sz), rng.Intn(sz)
		switch rng.Intn(7) {
		case 0:
			n.AddGate(netlist.And, f1, f2)
		case 1:
			n.AddGate(netlist.Or, f1, f2)
		case 2:
			n.AddGate(netlist.Xor, f1, f2)
		case 3:
			n.AddGate(netlist.Nand, f1, f2)
		case 4:
			n.AddGate(netlist.Not, f1)
		case 5:
			n.AddGate(netlist.Mux, f1, f2, f3)
		case 6:
			n.AddGate(netlist.DFF, f1)
		}
	}
	for i := 0; i < 3; i++ {
		n.AddOutput("y"+string(rune('0'+i)), rng.Intn(len(n.Gates)))
	}
	return n
}

// TestRunWorkerInvariance is the core acceptance criterion of the
// parallel engine: for any worker count the full run result is
// bit-identical to a single-worker run (no TimeBudget, so the one
// legitimate source of nondeterminism is off).
func TestRunWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	circuits := []*netlist.Netlist{
		buildC17ish(),
		buildShiftChain(),
		randomSeqCircuit(rng, 5, 140),
		randomSeqCircuit(rng, 6, 200),
	}
	for ci, nl := range circuits {
		faults := fault.Universe(nl)
		base := Options{Seed: 5, MaxFrames: 4, BacktrackLimit: 64, RandomSequences: 8}

		o1 := base
		o1.Workers = 1
		ref := New(nl, o1).Run(faults)
		for _, w := range []int{2, 4, 8} {
			ow := base
			ow.Workers = w
			got := New(nl, ow).Run(faults)
			runsEqual(t, formatName(ci, w), ref, got)
		}
	}
}

func formatName(circuit, workers int) string {
	return "circuit " + string(rune('0'+circuit)) + " workers " + string(rune('0'+workers))
}

// TestARMALUDeterminism runs the real ARM ALU workload serial vs -j 8
// and demands identical fault coverage and pattern counts — the
// ISSUE's acceptance test on real hardware description input.
func TestARMALUDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("ARM ALU synthesis + two ATPG runs in -short mode")
	}
	res, err := arm.SynthesizeModule("arm_alu", 8)
	if err != nil {
		t.Fatal(err)
	}
	nl := res.Netlist
	faults := fault.Universe(nl)
	base := Options{Seed: 1, MaxFrames: 3, BacktrackLimit: 100, RandomSequences: 16}

	o1 := base
	o1.Workers = 1
	serial := New(nl, o1).Run(faults)
	o8 := base
	o8.Workers = 8
	parallel := New(nl, o8).Run(faults)

	if serial.Coverage() != parallel.Coverage() {
		t.Errorf("coverage: serial %.4f%% vs -j8 %.4f%%", serial.Coverage(), parallel.Coverage())
	}
	if len(serial.Tests) != len(parallel.Tests) {
		t.Errorf("pattern count: serial %d vs -j8 %d", len(serial.Tests), len(parallel.Tests))
	}
	runsEqual(t, "arm_alu", serial, parallel)
	if serial.Coverage() < 50 {
		t.Errorf("suspiciously low ALU coverage %.1f%%; workload may be degenerate", serial.Coverage())
	}
}

// TestDetectedSetHammer drives the shared canonical detected-set and
// the speculative merge from many goroutines at once (run under -race
// in CI): a fault-rich circuit, many workers, tiny chunks.
func TestDetectedSetHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	nl := randomSeqCircuit(rng, 6, 260)
	faults := fault.Universe(nl)
	opts := Options{Seed: 3, MaxFrames: 3, BacktrackLimit: 32, RandomSequences: 4, Workers: 12}
	got := New(nl, opts).Run(faults)

	ref := New(nl, Options{Seed: 3, MaxFrames: 3, BacktrackLimit: 32, RandomSequences: 4, Workers: 1}).Run(faults)
	runsEqual(t, "hammer", ref, got)
}

func TestMix64Streams(t *testing.T) {
	seen := map[int64]bool{}
	for i := int64(0); i < 1000; i++ {
		v := mix64(1, i)
		if seen[v] {
			t.Fatalf("mix64 collision at stream %d", i)
		}
		seen[v] = true
	}
	if mix64(1, 0) == mix64(2, 0) {
		t.Error("mix64 ignores the seed")
	}
}
