package atpg

import (
	"testing"

	"factor/internal/fault"
	"factor/internal/netlist"
	"factor/internal/sim"
)

func TestCompactDropsRedundantTests(t *testing.T) {
	nl := buildC17ish()
	faults := fault.Universe(nl)

	// Generate a deliberately redundant set: full ATPG tests plus the
	// same tests duplicated.
	eng := New(nl, Options{Seed: 4})
	run := eng.Run(faults)
	if run.Coverage() != 100 {
		t.Fatalf("setup: coverage %.1f%%", run.Coverage())
	}
	redundant := append(append([]fault.Sequence{}, run.Tests...), run.Tests...)

	compacted, res := Compact(nl, faults, redundant)
	if res.Before != len(redundant) || res.After != len(compacted) {
		t.Errorf("accounting: %+v vs %d -> %d", res, len(redundant), len(compacted))
	}
	if len(compacted) >= len(redundant) {
		t.Errorf("compaction kept everything: %d -> %d", len(redundant), len(compacted))
	}
	// Coverage must be fully retained.
	if got := Validate(nl, faults, compacted); got != run.Result.NumDetected() {
		t.Errorf("compacted set detects %d, original %d", got, run.Result.NumDetected())
	}
	if res.Coverage != run.Result.NumDetected() {
		t.Errorf("reported coverage %d, want %d", res.Coverage, run.Result.NumDetected())
	}
}

func TestCompactPrefersLaterTests(t *testing.T) {
	// Two tests where the second subsumes the first: only the second
	// survives.
	n := netlist.New("and2")
	a := n.AddInput("a")
	b := n.AddInput("b")
	y := n.AddGate(netlist.And, a, b)
	n.AddOutput("y", y)
	faults := fault.Universe(n)

	weak := fault.Sequence{fault.Vector{"a": sim.L1, "b": sim.L1}}
	strongSet := []fault.Sequence{
		weak,
		{fault.Vector{"a": sim.L1, "b": sim.L1}, fault.Vector{"a": sim.L0, "b": sim.L1}, fault.Vector{"a": sim.L1, "b": sim.L0}},
	}
	compacted, res := Compact(n, faults, strongSet)
	if len(compacted) != 1 {
		t.Fatalf("kept %d sequences, want 1 (the subsuming one): %+v", len(compacted), res)
	}
	if len(compacted[0]) != 3 {
		t.Errorf("kept the weak test instead of the strong one")
	}
}

func TestCompactEmptyInput(t *testing.T) {
	nl := buildC17ish()
	out, res := Compact(nl, fault.Universe(nl), nil)
	if out != nil || res.Before != 0 || res.After != 0 {
		t.Errorf("empty input mishandled: %v %+v", out, res)
	}
}

func TestCompactOnSequentialCircuit(t *testing.T) {
	nl := buildShiftChain()
	faults := fault.Universe(nl)
	eng := New(nl, Options{Seed: 11})
	run := eng.Run(faults)
	if run.Result.NumDetected() == 0 {
		t.Fatal("setup: nothing detected")
	}
	compacted, res := Compact(nl, faults, run.Tests)
	if got := Validate(nl, faults, compacted); got < run.Result.NumDetected() {
		t.Errorf("compaction lost coverage: %d < %d", got, run.Result.NumDetected())
	}
	if res.CyclesOut > res.CyclesIn {
		t.Errorf("compaction grew the set: %d -> %d cycles", res.CyclesIn, res.CyclesOut)
	}
}
