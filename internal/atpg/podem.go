// Package atpg implements a gate-level sequential ATPG engine in the
// mold of the commercial tools the FACTOR paper drives: a PODEM-based
// deterministic test generator over a time-frame-expanded circuit
// model, preceded by a random-pattern phase, with fault-dropping
// simulation between deterministic tests.
//
// The sequential model assumes unknown (X) power-up state: frame-0
// flip-flop outputs are X and cannot be assigned, so every test
// sequence must justify state through the primary inputs — exactly the
// discipline that makes deeply embedded modules expensive to test and
// that FACTOR's transformed modules (with PIERs) relieve.
//
// The backtrace cost model is pluggable (Options.Guide): the default
// is a fast distance-based estimate; GuideSCOAP substitutes the SCOAP
// testability metrics from internal/testability, which account for
// side-input sensitization. Either guide only re-ranks the complete
// search — with no aborted searches the per-fault classification is
// identical — and both preserve the engine's determinism contract
// (bit-identical results for any worker count and across
// checkpoint/resume; the guide is part of the checkpoint fingerprint).
package atpg

import (
	"time"

	"factor/internal/fault"
	"factor/internal/netlist"
	"factor/internal/sim"
)

// Status classifies the outcome of deterministic test generation for
// one fault.
type Status int

// Test generation outcomes.
const (
	// Detected: a test sequence was found.
	Detected Status = iota
	// Untestable: the search space was exhausted within the time-frame
	// budget without finding a test (redundant or sequentially
	// untestable within the budget).
	Untestable
	// Aborted: the backtrack or time limit was hit.
	Aborted
)

func (s Status) String() string {
	switch s {
	case Detected:
		return "detected"
	case Untestable:
		return "untestable"
	case Aborted:
		return "aborted"
	}
	return "unknown"
}

const costInf = 1 << 28

// podem is the state of one deterministic search for one fault at a
// fixed number of time frames.
type podem struct {
	nl     *netlist.Netlist
	order  []int
	flt    fault.Fault
	frames int

	good [][]sim.Logic // [frame][gate]
	bad  [][]sim.Logic

	// PI assignments: assigned[frame][gate] is L0/L1 when decided, LX
	// otherwise. Indexed by gate ID (only PI slots used).
	assigned [][]sim.Logic

	cc0, cc1 []int        // static 0/1-controllability per gate
	obsDist  []int        // static distance-to-observation per gate
	fanouts  [][]int      // shared read-only fanout lists
	poSet    map[int]bool // shared read-only PO membership

	backtracks int
	decisions  int // PI assignments pushed on the decision stack
	limit      int
	deadline   time.Time
}

// newPodem builds one search over the shared per-netlist statics. The
// statics are read-only, so concurrent searches on different goroutines
// share them safely.
func newPodem(nl *netlist.Netlist, f fault.Fault, frames, limit int, deadline time.Time, st *statics) *podem {
	p := &podem{
		nl: nl, order: st.order, flt: f, frames: frames,
		limit: limit, deadline: deadline,
		cc0: st.cc0, cc1: st.cc1, obsDist: st.obs,
		fanouts: st.fanouts, poSet: st.poSet,
	}
	p.good = make([][]sim.Logic, frames)
	p.bad = make([][]sim.Logic, frames)
	p.assigned = make([][]sim.Logic, frames)
	for t := 0; t < frames; t++ {
		p.good[t] = make([]sim.Logic, len(nl.Gates))
		p.bad[t] = make([]sim.Logic, len(nl.Gates))
		p.assigned[t] = make([]sim.Logic, len(nl.Gates))
		for i := range p.assigned[t] {
			p.assigned[t][i] = sim.LX
		}
	}
	return p
}

// simulate recomputes both machines over all frames from the current
// PI assignments.
func (p *podem) simulate() {
	var inBuf [3]sim.Logic
	var badBuf [3]sim.Logic
	for t := 0; t < p.frames; t++ {
		for _, id := range p.order {
			g := p.nl.Gates[id]
			var gv, bv sim.Logic
			switch g.Kind {
			case netlist.Input:
				gv = p.assigned[t][id]
				bv = gv
			case netlist.Const0:
				gv, bv = sim.L0, sim.L0
			case netlist.Const1:
				gv, bv = sim.L1, sim.L1
			case netlist.DFF:
				if t == 0 {
					gv, bv = sim.LX, sim.LX
				} else {
					d := g.Fanin[0]
					gv = p.good[t-1][d]
					bv = p.bad[t-1][d]
					if p.flt.Gate == id && p.flt.Pin == 0 {
						bv = p.stuckValue()
					}
				}
			default:
				in := inBuf[:len(g.Fanin)]
				bin := badBuf[:len(g.Fanin)]
				for i, f := range g.Fanin {
					in[i] = p.good[t][f]
					bin[i] = p.bad[t][f]
				}
				if p.flt.Gate == id && p.flt.Pin >= 0 {
					bin[p.flt.Pin] = p.stuckValue()
				}
				gv = sim.EvalGateL(g.Kind, in)
				bv = sim.EvalGateL(g.Kind, bin)
			}
			if p.flt.Gate == id && p.flt.Pin < 0 {
				bv = p.stuckValue()
			}
			p.good[t][id] = gv
			p.bad[t][id] = bv
		}
	}
}

func (p *podem) stuckValue() sim.Logic {
	if p.flt.SAOne {
		return sim.L1
	}
	return sim.L0
}

// composite five-valued view of a line.
type comp int8

const (
	c0 comp = iota
	c1
	cX
	cD    // good 1, faulty 0
	cDbar // good 0, faulty 1
)

func (p *podem) value(t, g int) comp {
	gv, bv := p.good[t][g], p.bad[t][g]
	switch {
	case gv == sim.L0 && bv == sim.L0:
		return c0
	case gv == sim.L1 && bv == sim.L1:
		return c1
	case gv == sim.L1 && bv == sim.L0:
		return cD
	case gv == sim.L0 && bv == sim.L1:
		return cDbar
	}
	return cX
}

// detected reports whether any PO shows D/D' in any frame.
func (p *podem) detected() bool {
	for t := 0; t < p.frames; t++ {
		for _, po := range p.nl.POs {
			if v := p.value(t, po); v == cD || v == cDbar {
				return true
			}
		}
	}
	return false
}

// line is a (frame, gate) pair in the unrolled model.
type line struct {
	t, g int
}

// excited reports whether the fault site is activated in some frame
// (good site value differs from the stuck value). For pin faults the
// site line is the driving gate of that pin.
func (p *podem) excited() bool {
	site := p.siteGate()
	want := sim.NotL(p.stuckValue())
	for t := 0; t < p.frames; t++ {
		if p.good[t][site] == want {
			return true
		}
	}
	return false
}

func (p *podem) siteGate() int {
	if p.flt.Pin < 0 {
		return p.flt.Gate
	}
	return p.nl.Gates[p.flt.Gate].Fanin[p.flt.Pin]
}

// objective is one candidate value objective.
type objective struct {
	l   line
	val sim.Logic
}

// excitationObjectives lists the frames in which the site could still
// be activated (good value X). Later frames are easier to justify from
// unknown initial state, so they come first.
func (p *podem) excitationObjectives() []objective {
	site := p.siteGate()
	want := sim.NotL(p.stuckValue())
	var out []objective
	for t := p.frames - 1; t >= 0; t-- {
		if p.good[t][site] == sim.LX {
			out = append(out, objective{l: line{t, site}, val: want})
		}
	}
	return out
}

// pinValue returns the composite value seen on one input pin of a
// gate, accounting for the fault injection on the faulted pin (where
// the faulty machine sees the stuck value regardless of the driver).
func (p *podem) pinValue(t, gate, pin int) comp {
	drv := p.nl.Gates[gate].Fanin[pin]
	gv := p.good[t][drv]
	bv := p.bad[t][drv]
	if p.flt.Gate == gate && p.flt.Pin == pin {
		bv = p.stuckValue()
	}
	switch {
	case gv == sim.L0 && bv == sim.L0:
		return c0
	case gv == sim.L1 && bv == sim.L1:
		return c1
	case gv == sim.L1 && bv == sim.L0:
		return cD
	case gv == sim.L0 && bv == sim.L1:
		return cDbar
	}
	return cX
}

// dFrontier returns combinational gates with a D/D' input pin and an X
// output. Input-pin faults surface here through pinValue: once the
// faulted pin's good value opposes the stuck value, the faulted gate
// itself joins the frontier.
func (p *podem) dFrontier() []line {
	var out []line
	for t := 0; t < p.frames; t++ {
		for _, id := range p.order {
			g := p.nl.Gates[id]
			if !g.Kind.Combinational() {
				continue
			}
			if p.value(t, id) != cX {
				continue
			}
			for pin := range g.Fanin {
				if v := p.pinValue(t, id, pin); v == cD || v == cDbar {
					out = append(out, line{t, id})
					break
				}
			}
		}
	}
	return out
}

// xPathExists checks whether any X-valued path leads from l to a PO,
// crossing frames through flip-flops.
func (p *podem) xPathExists(l line, fanouts [][]int, poSet map[int]bool) bool {
	seen := map[line]bool{}
	stack := []line{l}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		if poSet[cur.g] {
			return true
		}
		for _, fo := range fanouts[cur.g] {
			fg := p.nl.Gates[fo]
			if fg.Kind == netlist.DFF {
				if cur.t+1 < p.frames && p.value(cur.t+1, fo) == cX {
					stack = append(stack, line{cur.t + 1, fo})
				}
				continue
			}
			if fg.Kind.Combinational() && p.value(cur.t, fo) == cX {
				stack = append(stack, line{cur.t, fo})
			}
		}
	}
	return false
}

// objectives lists candidate value objectives, PODEM-style, best
// first. The search tries them in order until one backtraces to an
// assignable primary input.
func (p *podem) objectives(fanouts [][]int, poSet map[int]bool) []objective {
	if !p.excited() {
		return p.excitationObjectives()
	}
	frontier := p.dFrontier()
	type cand struct {
		obj  objective
		cost int
	}
	var cands []cand
	for _, fl := range frontier {
		if !p.xPathExists(fl, fanouts, poSet) {
			continue
		}
		g := p.nl.Gates[fl.g]
		tgt, val, ok := p.propagationInput(fl, g)
		if !ok {
			continue
		}
		cands = append(cands, cand{obj: objective{l: tgt, val: val}, cost: p.obsDist[fl.g]})
	}
	// Stable selection sort by cost (candidate lists are short).
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].cost < cands[j-1].cost; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	out := make([]objective, len(cands))
	for i, c := range cands {
		out[i] = c.obj
	}
	return out
}

// propagationInput picks the input objective that unblocks a D-frontier
// gate: non-controlling values on X side inputs, select steering for
// muxes.
func (p *podem) propagationInput(fl line, g *netlist.Gate) (line, sim.Logic, bool) {
	if g.Kind == netlist.Mux {
		sel, d0, d1 := g.Fanin[0], g.Fanin[1], g.Fanin[2]
		sv := p.pinValue(fl.t, fl.g, 0)
		if sv == cD || sv == cDbar {
			// D on select: make the data inputs differ.
			for pin, di := range []int{d0, d1} {
				if p.pinValue(fl.t, fl.g, pin+1) == cX {
					other := p.pinValue(fl.t, fl.g, 2-pin)
					switch other {
					case c0:
						return line{fl.t, di}, sim.L1, true
					case c1:
						return line{fl.t, di}, sim.L0, true
					default:
						return line{fl.t, di}, sim.L0, true
					}
				}
			}
			return line{}, sim.LX, false
		}
		// D on a data input: steer the select.
		if sv == cX {
			if v := p.pinValue(fl.t, fl.g, 2); v == cD || v == cDbar {
				return line{fl.t, sel}, sim.L1, true
			}
			return line{fl.t, sel}, sim.L0, true
		}
		return line{}, sim.LX, false
	}
	ctrl, has := sim.ControllingValue(g.Kind)
	for pin, f := range g.Fanin {
		if p.pinValue(fl.t, fl.g, pin) == cX {
			want := sim.L0
			if has {
				want = sim.NotL(ctrl)
			}
			return line{fl.t, f}, want, true
		}
	}
	return line{}, sim.LX, false
}

// backtrace walks an objective back to an unassigned primary input
// through X-valued lines, returning the PI line and value to try.
func (p *podem) backtrace(obj line, val sim.Logic) (line, sim.Logic, bool) {
	cur := obj
	for steps := 0; steps < len(p.nl.Gates)*p.frames+16; steps++ {
		g := p.nl.Gates[cur.g]
		switch g.Kind {
		case netlist.Input:
			// The descent keeps to X lines in the composite view, but a
			// line can be X with its good value fully justified (the X
			// living only in the faulty machine — e.g. behind the faulted
			// select of a mux), so the walk can surface at an input that
			// is already assigned. Re-assigning it would change nothing
			// and the search would repeat this exact backtrace forever;
			// fail instead so the caller tries the next objective or
			// backtracks.
			if p.assigned[cur.t][cur.g] != sim.LX {
				return line{}, sim.LX, false
			}
			return cur, val, true
		case netlist.Const0, netlist.Const1:
			return line{}, sim.LX, false
		case netlist.DFF:
			if cur.t == 0 {
				return line{}, sim.LX, false // power-up state is uncontrollable
			}
			cur = line{cur.t - 1, g.Fanin[0]}
			continue
		case netlist.Buf:
			cur = line{cur.t, g.Fanin[0]}
			continue
		case netlist.Not:
			val = sim.NotL(val)
			cur = line{cur.t, g.Fanin[0]}
			continue
		case netlist.Mux:
			sel, d0, d1 := g.Fanin[0], g.Fanin[1], g.Fanin[2]
			switch p.value(cur.t, sel) {
			case c0:
				cur = line{cur.t, d0}
			case c1:
				cur = line{cur.t, d1}
			case cX:
				// Steer the select toward a data input that already
				// carries the needed value; otherwise pick the branch
				// whose data input is cheapest to control and justify
				// the select first (once the select is assigned, the
				// next backtrace descends into the data input).
				if p.binEqual(cur.t, d1, val) {
					val, cur = sim.L1, line{cur.t, sel}
				} else if p.binEqual(cur.t, d0, val) {
					val, cur = sim.L0, line{cur.t, sel}
				} else {
					cost0, cost1 := costInf, costInf
					if p.value(cur.t, d0) == cX {
						cost0 = p.cc0[sel] + p.valCost(d0, val)
					}
					if p.value(cur.t, d1) == cX {
						cost1 = p.cc1[sel] + p.valCost(d1, val)
					}
					switch {
					case cost0 == costInf && cost1 == costInf:
						return line{}, sim.LX, false
					case cost1 < cost0:
						val, cur = sim.L1, line{cur.t, sel}
					default:
						val, cur = sim.L0, line{cur.t, sel}
					}
				}
			default:
				return line{}, sim.LX, false
			}
			continue
		}
		inv := sim.Inverting(g.Kind)
		eff := val
		if inv {
			eff = sim.NotL(eff)
		}
		switch g.Kind {
		case netlist.And, netlist.Nand, netlist.Or, netlist.Nor:
			ctrl, _ := sim.ControllingValue(g.Kind)
			if eff == ctrl {
				// One controlling input suffices: pick the easiest X.
				if in, ok := p.pickInput(cur, g, eff, true); ok {
					cur, val = in, eff
					continue
				}
				return line{}, sim.LX, false
			}
			// All inputs need the non-controlling value: hardest X first.
			if in, ok := p.pickInput(cur, g, eff, false); ok {
				cur, val = in, eff
				continue
			}
			return line{}, sim.LX, false
		case netlist.Xor, netlist.Xnor:
			a, b := g.Fanin[0], g.Fanin[1]
			av, bv := p.value(cur.t, a), p.value(cur.t, b)
			pickVal := func(other comp) sim.Logic {
				switch other {
				case c0:
					return eff
				case c1:
					return sim.NotL(eff)
				default:
					return eff // assume other settles to 0
				}
			}
			// Prefer the cheaper-to-control X input.
			if av == cX && (bv != cX || p.eitherCost(a) <= p.eitherCost(b)) {
				cur, val = line{cur.t, a}, pickVal(bv)
				continue
			}
			if bv == cX {
				cur, val = line{cur.t, b}, pickVal(av)
				continue
			}
			return line{}, sim.LX, false
		}
		return line{}, sim.LX, false
	}
	return line{}, sim.LX, false
}

// valCost is the static cost of justifying value v on gate g.
func (p *podem) valCost(g int, v sim.Logic) int {
	if v == sim.L1 {
		return p.cc1[g]
	}
	return p.cc0[g]
}

// eitherCost is the cheaper of controlling a gate to 0 or 1.
func (p *podem) eitherCost(g int) int {
	return minInt(p.cc0[g], p.cc1[g])
}

func (p *podem) binEqual(t, g int, v sim.Logic) bool {
	cv := p.value(t, g)
	return (cv == c0 && v == sim.L0) || (cv == c1 && v == sim.L1)
}

// pickInput selects an X-valued fanin by controllability cost; easiest
// when easy is true, hardest otherwise.
func (p *podem) pickInput(cur line, g *netlist.Gate, want sim.Logic, easy bool) (line, bool) {
	best := -1
	bestCost := 0
	for _, f := range g.Fanin {
		if p.value(cur.t, f) != cX {
			continue
		}
		cost := p.cc1[f]
		if want == sim.L0 {
			cost = p.cc0[f]
		}
		if best < 0 || (easy && cost < bestCost) || (!easy && cost > bestCost) {
			best = f
			bestCost = cost
		}
	}
	if best < 0 {
		return line{}, false
	}
	return line{cur.t, best}, true
}

// decision is one PI assignment on the decision stack.
type decision struct {
	l       line
	val     sim.Logic
	flipped bool
}

// run executes the PODEM search. It returns the discovered test
// sequence on success.
func (p *podem) run() (fault.Sequence, Status) {
	fanouts, poSet := p.fanouts, p.poSet
	var stack []decision
	for iter := 0; ; iter++ {
		if iter&63 == 0 && !p.deadline.IsZero() && time.Now().After(p.deadline) {
			return nil, Aborted
		}
		p.simulate()
		if p.detected() {
			return p.extractSequence(), Detected
		}
		advanced := false
		for _, obj := range p.objectives(fanouts, poSet) {
			if pi, pv, ok := p.backtrace(obj.l, obj.val); ok {
				stack = append(stack, decision{l: pi, val: pv})
				p.decisions++
				p.assigned[pi.t][pi.g] = pv
				advanced = true
				break
			}
		}
		if advanced {
			continue
		}
		// Backtrack.
		p.backtracks++
		if p.backtracks > p.limit {
			return nil, Aborted
		}
		for {
			if len(stack) == 0 {
				return nil, Untestable
			}
			top := &stack[len(stack)-1]
			if !top.flipped {
				top.flipped = true
				top.val = sim.NotL(top.val)
				p.assigned[top.l.t][top.l.g] = top.val
				break
			}
			p.assigned[top.l.t][top.l.g] = sim.LX
			stack = stack[:len(stack)-1]
		}
	}
}

// extractSequence converts the PI assignments into a test sequence.
// Unassigned PIs stay absent from the vectors (X); the caller may fill
// them randomly before fault simulation.
func (p *podem) extractSequence() fault.Sequence {
	seq := make(fault.Sequence, p.frames)
	for t := 0; t < p.frames; t++ {
		vec := fault.Vector{}
		for i, pi := range p.nl.PIs {
			if v := p.assigned[t][pi]; v != sim.LX {
				vec[p.nl.PINames[i]] = v
			}
		}
		seq[t] = vec
	}
	return seq
}

// controllability computes SCOAP-like static 0/1 controllability costs;
// flip-flops add a sequential penalty and cyclic definitions relax to a
// fixpoint.
func controllability(nl *netlist.Netlist) (cc0, cc1 []int) {
	n := len(nl.Gates)
	cc0 = make([]int, n)
	cc1 = make([]int, n)
	for i := range cc0 {
		cc0[i], cc1[i] = costInf, costInf
	}
	capAdd := func(a, b int) int {
		s := a + b
		if s > costInf {
			return costInf
		}
		return s
	}
	for pass := 0; pass < 32; pass++ {
		changed := false
		set := func(id, v0, v1 int) {
			if v0 < cc0[id] {
				cc0[id] = v0
				changed = true
			}
			if v1 < cc1[id] {
				cc1[id] = v1
				changed = true
			}
		}
		for _, g := range nl.Gates {
			switch g.Kind {
			case netlist.Input:
				set(g.ID, 1, 1)
			case netlist.Const0:
				set(g.ID, 0, costInf)
			case netlist.Const1:
				set(g.ID, costInf, 0)
			case netlist.Buf:
				f := g.Fanin[0]
				set(g.ID, capAdd(cc0[f], 1), capAdd(cc1[f], 1))
			case netlist.Not:
				f := g.Fanin[0]
				set(g.ID, capAdd(cc1[f], 1), capAdd(cc0[f], 1))
			case netlist.And, netlist.Nand:
				a, b := g.Fanin[0], g.Fanin[1]
				v1 := capAdd(capAdd(cc1[a], cc1[b]), 1)
				v0 := capAdd(minInt(cc0[a], cc0[b]), 1)
				if g.Kind == netlist.Nand {
					v0, v1 = v1, v0
				}
				set(g.ID, v0, v1)
			case netlist.Or, netlist.Nor:
				a, b := g.Fanin[0], g.Fanin[1]
				v0 := capAdd(capAdd(cc0[a], cc0[b]), 1)
				v1 := capAdd(minInt(cc1[a], cc1[b]), 1)
				if g.Kind == netlist.Nor {
					v0, v1 = v1, v0
				}
				set(g.ID, v0, v1)
			case netlist.Xor, netlist.Xnor:
				a, b := g.Fanin[0], g.Fanin[1]
				same := minInt(capAdd(cc0[a], cc0[b]), capAdd(cc1[a], cc1[b]))
				diff := minInt(capAdd(cc0[a], cc1[b]), capAdd(cc1[a], cc0[b]))
				v0, v1 := capAdd(same, 1), capAdd(diff, 1)
				if g.Kind == netlist.Xnor {
					v0, v1 = v1, v0
				}
				set(g.ID, v0, v1)
			case netlist.Mux:
				s, d0, d1 := g.Fanin[0], g.Fanin[1], g.Fanin[2]
				v0 := minInt(capAdd(cc0[s], cc0[d0]), capAdd(cc1[s], cc0[d1]))
				v1 := minInt(capAdd(cc0[s], cc1[d0]), capAdd(cc1[s], cc1[d1]))
				set(g.ID, capAdd(v0, 1), capAdd(v1, 1))
			case netlist.DFF:
				f := g.Fanin[0]
				const seqPenalty = 10
				set(g.ID, capAdd(cc0[f], seqPenalty), capAdd(cc1[f], seqPenalty))
			}
		}
		if !changed {
			break
		}
	}
	return cc0, cc1
}

// observationDistance computes, per gate, a static cost to reach a
// primary output (levels through combinational gates, flip-flops add a
// sequential penalty).
func observationDistance(nl *netlist.Netlist) []int {
	n := len(nl.Gates)
	dist := make([]int, n)
	for i := range dist {
		dist[i] = costInf
	}
	for _, po := range nl.POs {
		dist[po] = 0
	}
	fanouts := nl.Fanouts()
	for pass := 0; pass < 64; pass++ {
		changed := false
		for id := n - 1; id >= 0; id-- {
			best := dist[id]
			for _, fo := range fanouts[id] {
				cost := 1
				if nl.Gates[fo].Kind == netlist.DFF {
					cost = 10
				}
				if d := dist[fo] + cost; d < best {
					best = d
				}
			}
			if best < dist[id] {
				dist[id] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
