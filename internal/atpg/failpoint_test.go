package atpg

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"factor/internal/factorerr"
	"factor/internal/failpoint"
	"factor/internal/fault"
)

// TestInjectedSearchPanicDeterministic drives the PODEM quarantine
// boundary through the failpoint registry: a probabilistic panic
// keyed by fault identity must quarantine the same faults — same
// QuarantinedNum, same full result — for every worker count, exactly
// like the hook-injected panics of TestDeterministicQuarantine.
func TestInjectedSearchPanicDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	nl := randomSeqCircuit(rng, 5, 140)
	faults := fault.Universe(nl)

	reg, err := failpoint.Parse("atpg.search=panic:0.2:9")
	if err != nil {
		t.Fatal(err)
	}
	failpoint.Activate(reg)
	defer failpoint.Deactivate()

	base := Options{Seed: 5, MaxFrames: 4, BacktrackLimit: 64, DisableRandomPhase: true}
	var ref *RunResult
	for _, workers := range []int{1, 2, 4} {
		opts := base
		opts.Workers = workers
		got, err := New(nl, opts).RunContext(context.Background(), faults)
		if err != nil {
			t.Fatalf("workers=%d: quarantine must not fail the run: %v", workers, err)
		}
		for _, qerr := range got.Errors {
			if !errors.Is(qerr, &factorerr.Error{Stage: factorerr.StageATPG, Code: factorerr.CodePanic}) {
				t.Fatalf("workers=%d: error %v is not a structured ATPG panic", workers, qerr)
			}
			var fe *factorerr.Error
			if !errors.As(qerr, &fe) || fe.Fault == "" {
				t.Fatalf("workers=%d: quarantine error lacks fault identity: %v", workers, qerr)
			}
		}
		if len(got.Errors) != got.QuarantinedNum {
			t.Fatalf("workers=%d: %d errors vs QuarantinedNum %d", workers, len(got.Errors), got.QuarantinedNum)
		}
		if ref == nil {
			ref = got
			if ref.QuarantinedNum == 0 {
				t.Fatal("probability 0.2 quarantined no fault; seed is degenerate")
			}
			continue
		}
		runsEqual(t, "injected-panic workers invariance", ref, got)
		if got.QuarantinedNum != ref.QuarantinedNum {
			t.Fatalf("workers=%d: QuarantinedNum %d diverges from %d", workers, got.QuarantinedNum, ref.QuarantinedNum)
		}
	}
}

// TestInjectedSearchErrorQuarantines: the error action at atpg.search
// quarantines without a panic — the cheap chaos-mode variant — and
// survives a checkpoint/resume split with the identical final result.
func TestInjectedSearchErrorQuarantines(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	nl := randomSeqCircuit(rng, 5, 140)
	faults := fault.Universe(nl)

	reg, err := failpoint.Parse("atpg.search=error:0.2:9")
	if err != nil {
		t.Fatal(err)
	}
	failpoint.Activate(reg)
	defer failpoint.Deactivate()

	opts := Options{Seed: 5, MaxFrames: 4, BacktrackLimit: 64, DisableRandomPhase: true, Workers: 2, CheckpointEvery: 2}
	var snap *Checkpoint
	opts.Checkpoint = func(ck *Checkpoint) error {
		if snap == nil {
			snap = ck
		}
		return nil
	}
	base, err := New(nl, opts).RunContext(context.Background(), faults)
	if err != nil {
		t.Fatalf("injected errors must not fail the run: %v", err)
	}
	if base.QuarantinedNum == 0 {
		t.Fatal("probability 0.2 quarantined no fault; seed is degenerate")
	}
	for _, qerr := range base.Errors {
		if !errors.Is(qerr, failpoint.ErrInjected) {
			t.Fatalf("quarantine error %v does not unwrap to ErrInjected", qerr)
		}
	}

	if snap == nil {
		t.Fatal("no checkpoint captured")
	}
	ropts := opts
	ropts.Workers = 3
	ropts.Resume = snap
	ropts.Checkpoint = func(*Checkpoint) error { return nil }
	resumed, err := New(nl, ropts).RunContext(context.Background(), faults)
	if err != nil {
		t.Fatalf("resume under injected errors failed: %v", err)
	}
	runsEqual(t, "injected-error checkpoint/resume", base, resumed)
}
