package atpg

import (
	"factor/internal/fault"
	"factor/internal/telemetry"
)

// RunStats are the run's deterministic work counters: the telemetry
// plane's view of how much search and simulation effort the flow
// committed. Every field is accounted on the merger goroutine from
// merge-ordered contributions — speculative searches the merger drops
// are never counted — so totals are bit-identical for any worker count
// and, because they are journaled in the checkpoint and restored on
// resume, across any checkpoint/resume split. (Wall times live on
// RunResult, not here: they are diagnostic, never deterministic.)
type RunStats struct {
	// RandomSequences is the number of random-phase sequences
	// generated and simulated.
	RandomSequences uint64 `json:"random_sequences"`
	// Searches counts the deterministic PODEM searches whose outcome
	// the merger used (dropped faults' speculative searches excluded).
	Searches uint64 `json:"searches"`
	// Decisions and Backtracks sum the PI assignments pushed and the
	// backtracks taken across all counted searches, including every
	// time-frame escalation of each search.
	Decisions  uint64 `json:"decisions"`
	Backtracks uint64 `json:"backtracks"`
	// JournaledTests is the total number of tests written into
	// checkpoint journal records; zero when checkpointing is off. The
	// final value equals the exported test count regardless of flush
	// cadence, so it is split-invariant even though the number of
	// flushes is not.
	JournaledTests uint64 `json:"journaled_tests"`
	// Sim aggregates the event-driven fault-simulation engine's work
	// across both phases (first-detection pass + merge replays).
	Sim fault.SimStats `json:"sim"`
}

// searchStats is one search's contribution, carried from the worker to
// the merger inside specResult.
type searchStats struct {
	decisions  uint64
	backtracks uint64
}

// publishTelemetry folds the run's deterministic counters into the
// telemetry handle (nil-safe). Counter values mirror RunStats plus the
// classification totals; repeated runs against one handle accumulate.
func (r *RunResult) publishTelemetry(tel *telemetry.Telemetry) {
	if tel == nil {
		return
	}
	s := r.Stats
	tel.AddCounter("atpg.random_sequences", s.RandomSequences)
	tel.AddCounter("atpg.searches", s.Searches)
	tel.AddCounter("atpg.decisions", s.Decisions)
	tel.AddCounter("atpg.backtracks", s.Backtracks)
	tel.AddCounter("atpg.journaled_tests", s.JournaledTests)
	tel.AddCounter("atpg.detected_random", uint64(r.DetectedRandom))
	tel.AddCounter("atpg.detected_deterministic", uint64(r.DetectedDet))
	tel.AddCounter("atpg.untestable", uint64(r.UntestableNum))
	tel.AddCounter("atpg.aborted", uint64(r.AbortedNum))
	tel.AddCounter("atpg.quarantined", uint64(r.QuarantinedNum))
	tel.AddCounter("atpg.tests", uint64(len(r.Tests)))
	tel.AddCounter("faultsim.batches", s.Sim.Batches)
	tel.AddCounter("faultsim.cycles", s.Sim.Cycles)
	tel.AddCounter("faultsim.events", s.Sim.Events)
	tel.AddCounter("faultsim.flop_heals", s.Sim.FlopHeals)
	tel.AddCounter("faultsim.trace_cycles", s.Sim.TraceCycles)
}
