package atpg

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"factor/internal/factorerr"
	"factor/internal/failpoint"
	"factor/internal/fault"
)

func testCheckpoint(gen uint64, merged int) *Checkpoint {
	return &Checkpoint{
		Version:     CheckpointVersion,
		Fingerprint: "00deadbeef00cafe",
		Generation:  gen,
		PostRandom:  []bool{true, false, true},
		Detected:    []bool{true, false, true},
		Merged:      merged,
		Tests: []fault.Sequence{
			{{"a": 0, "b": 1}},
		},
	}
}

// TestDecodeClassifiesCorruption: every way a frame can be torn —
// truncated header, garbage header, truncated payload, flipped payload
// byte (CRC), generation disagreement — must land on
// CodeCheckpointCorrupt, while a frame from another format version is
// CodeCheckpointVersion. All of them still match the CodeCheckpoint
// family wildcard.
func TestDecodeClassifiesCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "atpg.ckpt")
	if err := testCheckpoint(1, 0).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := map[string][]byte{
		"empty file":        {},
		"garbage header":    []byte("NOTACKPT 3 1 10 00000000\nxxxxxxxxxx"),
		"truncated header":  good[:5],
		"truncated payload": good[:len(good)-4],
		"flipped byte":      append(append([]byte{}, good[:len(good)-2]...), good[len(good)-2]^0x40, '\n'),
	}
	for name, data := range corrupt {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := LoadCheckpoint(path)
		if !errors.Is(err, &factorerr.Error{Code: factorerr.CodeCheckpointCorrupt}) {
			t.Errorf("%s: error = %v, want CodeCheckpointCorrupt", name, err)
		}
		if !errors.Is(err, &factorerr.Error{Code: factorerr.CodeCheckpoint}) {
			t.Errorf("%s: error %v does not match the CodeCheckpoint family", name, err)
		}
	}

	// A different format version is a distinct condition: the tool
	// build is wrong, not the file.
	header := strings.SplitN(string(good), "\n", 2)
	vheader := strings.Replace(header[0], "FACTORCKPT 3", "FACTORCKPT 2", 1)
	if err := os.WriteFile(path, []byte(vheader+"\n"+header[1]), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadCheckpoint(path)
	if !errors.Is(err, &factorerr.Error{Code: factorerr.CodeCheckpointVersion}) {
		t.Fatalf("version mismatch error = %v, want CodeCheckpointVersion", err)
	}
	if errors.Is(err, &factorerr.Error{Code: factorerr.CodeCheckpointCorrupt}) {
		t.Fatalf("version mismatch error %v must not read as corruption", err)
	}
}

// TestLoadLatestFallsBack: after two generations, a corrupted (or
// deleted) head journal recovers from the previous-good backup; a
// version-mismatched head does not.
func TestLoadLatestFallsBack(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "atpg.ckpt")
	j := NewJournal(path)
	if err := j.Flush(testCheckpoint(0, 0)); err != nil {
		t.Fatal(err)
	}
	if err := j.Flush(testCheckpoint(0, 1)); err != nil {
		t.Fatal(err)
	}

	ck, fellBack, err := LoadLatest(path)
	if err != nil || fellBack {
		t.Fatalf("healthy head: LoadLatest = (%v, %v), want generation 2", err, fellBack)
	}
	if ck.Generation != 2 || ck.Merged != 1 {
		t.Fatalf("healthy head loaded generation %d merged %d, want 2/1", ck.Generation, ck.Merged)
	}

	// Corrupt the head: fall back one generation.
	if err := os.WriteFile(path, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	ck, fellBack, err = LoadLatest(path)
	if err != nil || !fellBack {
		t.Fatalf("corrupt head: LoadLatest = (%v, %v), want backup", err, fellBack)
	}
	if ck.Generation != 1 || ck.Merged != 0 {
		t.Fatalf("fallback loaded generation %d merged %d, want 1/0", ck.Generation, ck.Merged)
	}

	// Delete the head entirely (crash between the two renames): same
	// recovery.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if ck, fellBack, err = LoadLatest(path); err != nil || !fellBack || ck.Generation != 1 {
		t.Fatalf("missing head: LoadLatest = (gen %v, %v, %v), want backup generation 1",
			ck, fellBack, err)
	}

	// Both gone: the head's error surfaces.
	if err := os.Remove(path + BackupSuffix); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadLatest(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing both: err = %v, want os.ErrNotExist", err)
	}

	// A version-mismatched head is not recovered: the backup came from
	// the same build and would only mask the real problem.
	if err := NewJournal(path).Flush(testCheckpoint(0, 1)); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(strings.Replace(string(raw), "FACTORCKPT 3", "FACTORCKPT 9", 1)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadLatest(path); !errors.Is(err, &factorerr.Error{Code: factorerr.CodeCheckpointVersion}) {
		t.Fatalf("version-mismatched head: err = %v, want CodeCheckpointVersion (no fallback)", err)
	}
}

// TestJournalGenerations: Flush numbers generations monotonically and
// a reopened Journal continues after the last durable frame instead of
// restarting at 1 (which would break the "backup is one generation
// older" invariant).
func TestJournalGenerations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "atpg.ckpt")
	j := NewJournal(path)
	for i := 1; i <= 3; i++ {
		ck := testCheckpoint(0, i)
		if err := j.Flush(ck); err != nil {
			t.Fatal(err)
		}
		if ck.Generation != uint64(i) {
			t.Fatalf("flush %d stamped generation %d", i, ck.Generation)
		}
	}
	prev, err := LoadCheckpoint(path + BackupSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if prev.Generation != 2 {
		t.Fatalf("backup holds generation %d, want 2", prev.Generation)
	}

	j2 := NewJournal(path)
	ck := testCheckpoint(0, 4)
	if err := j2.Flush(ck); err != nil {
		t.Fatal(err)
	}
	if ck.Generation != 4 {
		t.Fatalf("reopened journal stamped generation %d, want 4", ck.Generation)
	}
}

// TestWriteFileRetries: a persistently failing write site is retried
// the full budget and then surfaces the injected error; the journal
// pair still holds the previous good generation afterwards.
func TestWriteFileRetries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "atpg.ckpt")
	j := NewJournal(path)
	if err := j.Flush(testCheckpoint(0, 0)); err != nil {
		t.Fatal(err)
	}

	r, err := failpoint.Parse("atpg.checkpoint.rename=error")
	if err != nil {
		t.Fatal(err)
	}
	failpoint.Activate(r)
	defer failpoint.Deactivate()

	err = j.Flush(testCheckpoint(0, 1))
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("flush under persistent rename failure = %v, want injected error", err)
	}
	stats := failpoint.Active().Stats()
	if !strings.Contains(stats, "3/3") {
		t.Fatalf("stats %q: want %d triggers (one per retry attempt)", stats, writeAttempts)
	}

	// The failed flush rotated the head to .prev before the rename
	// failed; recovery still has the previous good generation.
	failpoint.Deactivate()
	ck, fellBack, err := LoadLatest(path)
	if err != nil || !fellBack || ck.Generation != 1 {
		t.Fatalf("after failed flush: LoadLatest = (%+v, %v, %v), want backup generation 1",
			ck, fellBack, err)
	}
}
