package atpg

import (
	"context"
	"math/rand"
	"testing"

	"factor/internal/fault"
	"factor/internal/telemetry"
)

// TestJournaledTestsCadenceInvariant: the JournaledTests counter's
// final value equals the exported test count for any checkpoint flush
// cadence, and stays zero with checkpointing disabled.
func TestJournaledTestsCadenceInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	nl := randomSeqCircuit(rng, 6, 180)
	faults := fault.Universe(nl)
	base := Options{Seed: 3, MaxFrames: 4, BacktrackLimit: 64, RandomSequences: 8, Workers: 2}

	plain := New(nl, base).Run(faults)
	if plain.Stats.JournaledTests != 0 {
		t.Fatalf("no checkpointing, but JournaledTests = %d", plain.Stats.JournaledTests)
	}

	for _, every := range []int{1, 2, 7, 1 << 20} {
		opts := base
		opts.CheckpointEvery = every
		opts.Checkpoint = func(*Checkpoint) error { return nil }
		got := New(nl, opts).Run(faults)
		if got.Stats.JournaledTests != uint64(len(got.Tests)) {
			t.Errorf("every=%d: JournaledTests = %d, want %d (len(Tests))",
				every, got.Stats.JournaledTests, len(got.Tests))
		}
	}
}

// TestJournaledTestsResumeInvariant: a run split by cancellation and
// resumed (with checkpointing enabled on both legs) journals the same
// total as the uninterrupted checkpointed run.
func TestJournaledTestsResumeInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	nl := randomSeqCircuit(rng, 6, 180)
	faults := fault.Universe(nl)
	base := Options{Seed: 4, MaxFrames: 4, BacktrackLimit: 64, RandomSequences: 8, CheckpointEvery: 3}

	ref := base
	ref.Workers = 1
	ref.Checkpoint = func(*Checkpoint) error { return nil }
	want := New(nl, ref).Run(faults)
	if want.Stats.JournaledTests != uint64(len(want.Tests)) {
		t.Fatalf("reference JournaledTests = %d, want %d", want.Stats.JournaledTests, len(want.Tests))
	}

	ctx, cancel := context.WithCancel(context.Background())
	var snap *Checkpoint
	opts := base
	opts.Workers = 4
	opts.Checkpoint = func(ck *Checkpoint) error {
		if snap == nil {
			snap = ck
			cancel()
		}
		return nil
	}
	if _, err := New(nl, opts).RunContext(ctx, faults); err == nil || snap == nil {
		t.Skip("run outran cancellation; nothing to resume")
	}
	cancel()

	ropts := base
	ropts.Workers = 2
	ropts.Resume = snap
	ropts.Checkpoint = func(*Checkpoint) error { return nil }
	resumed, err := New(nl, ropts).RunContext(context.Background(), faults)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Stats != want.Stats {
		t.Fatalf("resumed stats diverge:\n got %+v\nwant %+v", resumed.Stats, want.Stats)
	}
}

// TestRunPublishesTelemetry: RunContext folds the deterministic
// counters into a context-attached telemetry handle.
func TestRunPublishesTelemetry(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	nl := randomSeqCircuit(rng, 5, 120)
	faults := fault.Universe(nl)
	eng := New(nl, Options{Seed: 2, MaxFrames: 3, BacktrackLimit: 64, RandomSequences: 6, Workers: 2})

	tel := telemetry.New()
	ctx := telemetry.NewContext(context.Background(), tel)
	out, err := eng.RunContext(ctx, faults)
	if err != nil {
		t.Fatal(err)
	}
	counters := tel.Counters()
	checks := map[string]uint64{
		"atpg.searches":         out.Stats.Searches,
		"atpg.decisions":        out.Stats.Decisions,
		"atpg.backtracks":       out.Stats.Backtracks,
		"atpg.random_sequences": out.Stats.RandomSequences,
		"atpg.tests":            uint64(len(out.Tests)),
		"faultsim.events":       out.Stats.Sim.Events,
		"faultsim.batches":      out.Stats.Sim.Batches,
	}
	for name, want := range checks {
		if counters[name] != want {
			t.Errorf("counter %s = %d, want %d", name, counters[name], want)
		}
	}
	if out.Stats.Sim.Events == 0 || out.Stats.Searches == 0 {
		t.Fatalf("stats not populated: %+v", out.Stats)
	}
}
