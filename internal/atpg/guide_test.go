package atpg

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"factor/internal/fault"
	"factor/internal/netlist"
)

func TestParseGuide(t *testing.T) {
	for s, want := range map[string]Guide{"": GuideDefault, "default": GuideDefault, "scoap": GuideSCOAP} {
		got, err := ParseGuide(s)
		if err != nil || got != want {
			t.Errorf("ParseGuide(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseGuide("bogus"); err == nil {
		t.Error("ParseGuide(bogus) succeeded, want error")
	}
	if GuideDefault.String() != "default" || GuideSCOAP.String() != "scoap" {
		t.Errorf("Guide.String() = %q/%q", GuideDefault, GuideSCOAP)
	}
}

// guideCircuits are the shared corpus for the guided-search property
// tests: the classic c17-ish combinational core, a flop chain, and two
// random sequential circuits.
func guideCircuits() []*netlist.Netlist {
	rng := rand.New(rand.NewSource(7))
	return []*netlist.Netlist{
		buildC17ish(),
		buildShiftChain(),
		randomSeqCircuit(rng, 5, 120),
		randomSeqCircuit(rng, 6, 180),
	}
}

// buildLoadableCounter is a 3-bit binary counter with parallel load:
// enough sequential structure (carry chain, mux loads, state feedback)
// for guided search to matter, yet every fault's search completes well
// under the test's backtrack limit.
func buildLoadableCounter() *netlist.Netlist {
	n := netlist.New("counter3")
	load := n.AddInput("load")
	en := n.AddInput("en")
	d := []int{n.AddInput("d0"), n.AddInput("d1"), n.AddInput("d2")}
	var flops [3]int
	for i := range flops {
		flops[i] = n.AddGate(netlist.DFF, d[i]) // placeholder D, rewired below
	}
	carry := en
	for i := 0; i < 3; i++ {
		tog := n.AddGate(netlist.Xor, flops[i], carry)
		next := n.AddGate(netlist.Mux, load, tog, d[i])
		n.SetFanin(flops[i], 0, next)
		if i < 2 {
			carry = n.AddGate(netlist.And, carry, flops[i])
		}
		n.AddOutput("q"+string(rune('0'+i)), flops[i])
	}
	return n
}

// TestGuidedDetectsSameFaultSet is the guided-ATPG soundness property:
// the guide only reorders the complete search, so with a backtrack
// limit high enough that nothing aborts, guided and unguided runs
// classify every fault identically (the generated sequences may
// differ). Random sequential circuits are excluded here — they carry
// genuinely hard faults that abort under any practical limit, which
// voids the premise; the conformance harness covers that corpus with
// an abort-gated variant of the same check.
func TestGuidedDetectsSameFaultSet(t *testing.T) {
	for ci, nl := range []*netlist.Netlist{buildC17ish(), buildShiftChain(), buildLoadableCounter()} {
		faults := fault.Universe(nl)
		base := Options{Seed: 5, MaxFrames: 4, BacktrackLimit: 4096, RandomSequences: 8, Workers: 2}

		def := New(nl, base).Run(faults)
		guided := base
		guided.Guide = GuideSCOAP
		sc := New(nl, guided).Run(faults)

		if def.AbortedNum != 0 || sc.AbortedNum != 0 {
			t.Fatalf("circuit %d: aborts present (default %d, scoap %d): raise BacktrackLimit, the property needs complete searches",
				ci, def.AbortedNum, sc.AbortedNum)
		}
		if !reflect.DeepEqual(def.Result.Detected, sc.Result.Detected) {
			t.Errorf("circuit %d: guided and unguided detected sets differ", ci)
		}
		if def.UntestableNum != sc.UntestableNum {
			t.Errorf("circuit %d: untestable counts differ: default %d, scoap %d",
				ci, def.UntestableNum, sc.UntestableNum)
		}
	}
}

// TestMuxSelectFaultTerminates is the regression test for a PODEM
// livelock: on a mux select-pin fault, backtrace could follow the
// good-machine select to a primary input that was already assigned
// (the X-ness living only in the faulty machine), and run() would
// re-assign it forever without consuming backtrack budget. The search
// must terminate without any deadline for every fault of the loadable
// counter, under both guides.
func TestMuxSelectFaultTerminates(t *testing.T) {
	nl := buildLoadableCounter()
	faults := fault.Universe(nl)
	done := make(chan *RunResult, 2)
	for _, gd := range []Guide{GuideDefault, GuideSCOAP} {
		go func(gd Guide) {
			o := Options{Seed: 5, MaxFrames: 4, BacktrackLimit: 4096, RandomSequences: 8, Workers: 2, Guide: gd}
			done <- New(nl, o).Run(faults)
		}(gd)
	}
	for i := 0; i < 2; i++ {
		select {
		case r := <-done:
			if r.AbortedNum != 0 {
				t.Errorf("run %d: %d aborts on the counter, want complete searches", i, r.AbortedNum)
			}
		case <-time.After(2 * time.Minute):
			t.Fatal("ATPG run did not terminate: select-pin livelock is back")
		}
	}
}

// TestGuidedWorkerInvariance extends the engine's core determinism
// contract to guided search: for any worker count the guided run is
// bit-identical to the single-worker guided run.
func TestGuidedWorkerInvariance(t *testing.T) {
	for ci, nl := range guideCircuits() {
		faults := fault.Universe(nl)
		base := Options{Seed: 5, MaxFrames: 4, BacktrackLimit: 64, RandomSequences: 8, Guide: GuideSCOAP}

		o1 := base
		o1.Workers = 1
		ref := New(nl, o1).Run(faults)
		for _, w := range []int{2, 8} {
			ow := base
			ow.Workers = w
			got := New(nl, ow).Run(faults)
			runsEqual(t, "guided "+formatName(ci, w), ref, got)
		}
	}
}

// TestGuideFingerprint: the guide shapes which sequences are journaled,
// so checkpoints taken under different guides must not cross-validate;
// and GuideDefault must hash exactly like the pre-guide engine so old
// journals stay resumable.
func TestGuideFingerprint(t *testing.T) {
	nl := buildC17ish()
	faults := fault.Universe(nl)
	base := Options{Seed: 5, MaxFrames: 2, BacktrackLimit: 64, RandomSequences: 4}
	guided := base
	guided.Guide = GuideSCOAP

	fpDef := New(nl, base).fingerprint(faults)
	fpSc := New(nl, guided).fingerprint(faults)
	if fpDef == fpSc {
		t.Error("default and scoap fingerprints collide; resume would replay under the wrong guide")
	}
	if again := New(nl, guided).fingerprint(faults); again != fpSc {
		t.Errorf("guided fingerprint unstable: %s vs %s", fpSc, again)
	}
}

// TestGuidedCheckpointResume: a guided run interrupted at a checkpoint
// resumes (under a different worker count) to a result bit-identical to
// the uninterrupted guided run.
func TestGuidedCheckpointResume(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	nl := randomSeqCircuit(rng, 5, 120)
	faults := fault.Universe(nl)
	base := Options{Seed: 5, MaxFrames: 3, BacktrackLimit: 64, RandomSequences: 4, Guide: GuideSCOAP, Workers: 2}

	ref := New(nl, base).Run(faults)

	var snap *Checkpoint
	capture := base
	capture.CheckpointEvery = 8
	capture.Checkpoint = func(ck *Checkpoint) error {
		if snap == nil && ck.Merged >= 8 && ck.Merged < len(faults) {
			snap = ck
		}
		return nil
	}
	New(nl, capture).Run(faults)
	if snap == nil {
		t.Fatal("no mid-run checkpoint captured")
	}

	resume := base
	resume.Workers = 3
	resume.Resume = snap
	got, err := New(nl, resume).RunContext(nil, faults)
	if err != nil {
		t.Fatalf("guided resume failed: %v", err)
	}
	runsEqual(t, "guided resume", ref, got)
}
