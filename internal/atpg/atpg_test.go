package atpg

import (
	"math/rand"
	"testing"
	"time"

	"factor/internal/fault"
	"factor/internal/netlist"
)

// buildC17ish builds a small NAND network in the spirit of ISCAS c17.
func buildC17ish() *netlist.Netlist {
	n := netlist.New("c17ish")
	g1 := n.AddInput("g1")
	g2 := n.AddInput("g2")
	g3 := n.AddInput("g3")
	g4 := n.AddInput("g4")
	g5 := n.AddInput("g5")
	n10 := n.AddGate(netlist.Nand, g1, g3)
	n11 := n.AddGate(netlist.Nand, g3, g4)
	n16 := n.AddGate(netlist.Nand, g2, n11)
	n19 := n.AddGate(netlist.Nand, n11, g5)
	n22 := n.AddGate(netlist.Nand, n10, n16)
	n23 := n.AddGate(netlist.Nand, n16, n19)
	n.AddOutput("o22", n22)
	n.AddOutput("o23", n23)
	return n
}

func TestCombinationalFullCoverage(t *testing.T) {
	nl := buildC17ish()
	faults := fault.Universe(nl)
	eng := New(nl, Options{Seed: 3})
	res := eng.Run(faults)
	if res.Coverage() != 100 {
		t.Errorf("coverage = %.1f%%, want 100%% (c17 is fully testable); %d untestable %d aborted",
			res.Coverage(), res.UntestableNum, res.AbortedNum)
	}
	if res.Efficiency() != 100 {
		t.Errorf("efficiency = %.1f%%", res.Efficiency())
	}
}

func TestDeterministicOnlyFullCoverage(t *testing.T) {
	nl := buildC17ish()
	faults := fault.Universe(nl)
	eng := New(nl, Options{Seed: 3, DisableRandomPhase: true})
	res := eng.Run(faults)
	if res.Coverage() != 100 {
		t.Errorf("PODEM-only coverage = %.1f%%, want 100%%", res.Coverage())
	}
	if res.DetectedRandom != 0 {
		t.Errorf("random phase ran despite DisableRandomPhase")
	}
	// With fault dropping the engine should need far fewer
	// deterministic targets than faults.
	if len(res.Tests) > res.TotalFaults {
		t.Errorf("more tests (%d) than faults (%d)?", len(res.Tests), res.TotalFaults)
	}
}

// buildRedundant builds z = ab + ~bc + ac where the consensus term ac
// is redundant: its AND-output sa0 is untestable.
func buildRedundant() (*netlist.Netlist, fault.Fault) {
	n := netlist.New("consensus")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	nb := n.AddGate(netlist.Not, b)
	ab := n.AddGate(netlist.And, a, b)
	nbc := n.AddGate(netlist.And, nb, c)
	ac := n.AddGate(netlist.And, a, c)
	o1 := n.AddGate(netlist.Or, ab, nbc)
	z := n.AddGate(netlist.Or, o1, ac)
	n.AddOutput("z", z)
	return n, fault.Fault{Site: fault.Site{Gate: ac, Pin: -1}, SAOne: false}
}

func TestRedundantFaultProvenUntestable(t *testing.T) {
	nl, f := buildRedundant()
	eng := New(nl, Options{DisableRandomPhase: true})
	seq, status, _ := eng.testFault(f, time.Time{})
	if status != Untestable {
		t.Errorf("status = %v (seq=%v), want untestable", status, seq)
	}
	res := eng.Run([]fault.Fault{f})
	if res.Coverage() != 0 || res.Efficiency() != 100 {
		t.Errorf("coverage=%.1f efficiency=%.1f, want 0 and 100", res.Coverage(), res.Efficiency())
	}
}

func TestGeneratedTestsActuallyDetect(t *testing.T) {
	nl := buildC17ish()
	faults := fault.Universe(nl)
	eng := New(nl, Options{Seed: 9, DisableRandomPhase: true})
	for _, f := range faults {
		seq, status, _ := eng.testFault(f, time.Time{})
		if status != Detected {
			t.Errorf("fault %v: status %v", f, status)
			continue
		}
		if !fault.SerialDetect(nl, f, seq) {
			t.Errorf("fault %v: generated sequence does not detect it (serial check)", f)
		}
	}
}

// TestExportedSuiteRedetects replays RunResult.Tests from scratch and
// checks every fault the run marked detected is re-detected by the
// exported suite alone — the suite-validity contract the conformance
// harness asserts pipeline-wide (invariant I3). In particular this
// covers the fill-masking fallback in mergeOne: when the random-filled
// sequence masks the target detection, the unfilled sequence must ship
// in the suite alongside the filled one.
func TestExportedSuiteRedetects(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for ci := 0; ci < 25; ci++ {
		nl := randomSeqCircuit(rng, 1+rng.Intn(5), 10+rng.Intn(60))
		faults := fault.Universe(nl)
		if len(faults) == 0 {
			continue
		}
		out := New(nl, Options{Seed: int64(ci) + 1, RandomSequences: 8, RandomSeqLen: 6}).Run(faults)
		replay := fault.NewResult(faults)
		ps := fault.NewParallel(nl)
		for _, seq := range out.Tests {
			ps.RunSequence(replay, seq)
		}
		for i := range faults {
			if out.Result.Detected[i] && !replay.Detected[i] {
				t.Errorf("circuit %d fault %v: marked detected but the exported suite does not re-detect it", ci, faults[i])
			}
		}
	}
}

// buildShiftChain builds a 3-deep shift register feeding a comparator,
// requiring multi-frame sequences to test faults near the source.
func buildShiftChain() *netlist.Netlist {
	n := netlist.New("shift3")
	d := n.AddInput("d")
	f1 := n.AddGate(netlist.DFF, d)
	f2 := n.AddGate(netlist.DFF, f1)
	f3 := n.AddGate(netlist.DFF, f2)
	n.AddOutput("q", f3)
	return n
}

func TestSequentialMultiFrame(t *testing.T) {
	nl := buildShiftChain()
	// Fault on the input d (stem of the PI): needs 4 frames (assign,
	// then 3 clocks to reach the output).
	f := fault.Fault{Site: fault.Site{Gate: nl.PI("d"), Pin: -1}, SAOne: false}
	eng := New(nl, Options{DisableRandomPhase: true})
	seq, status, _ := eng.testFault(f, time.Time{})
	if status != Detected {
		t.Fatalf("status = %v, want detected", status)
	}
	if len(seq) < 4 {
		t.Errorf("sequence length %d, want >= 4 (3 flops + launch)", len(seq))
	}
	if !fault.SerialDetect(nl, f, seq) {
		t.Errorf("sequence does not detect d/sa0")
	}
}

func TestSequentialCoverageWithUnknownReset(t *testing.T) {
	// A resettable circuit: with a synchronous clear input every flop
	// is controllable, so coverage should be complete.
	n := netlist.New("rctrl")
	clr := n.AddInput("clr")
	en := n.AddInput("en")
	nclr := n.AddGate(netlist.Not, clr)
	q := n.AddGate(netlist.DFF, en) // patched below
	x := n.AddGate(netlist.Xor, q, en)
	d := n.AddGate(netlist.And, x, nclr)
	n.SetFanin(q, 0, d)
	n.AddOutput("q", q)

	faults := fault.Universe(n)
	eng := New(n, Options{Seed: 5})
	res := eng.Run(faults)
	// clr/sa0 is genuinely undetectable under unknown power-up state
	// (the faulty machine never leaves X), so coverage stays below
	// 100%, but the engine must account for every fault: efficiency
	// (detected + proven untestable) must be complete.
	if res.Efficiency() != 100 {
		t.Errorf("efficiency = %.1f%%, want 100%% (aborted=%d)", res.Efficiency(), res.AbortedNum)
	}
	if res.Coverage() < 80 {
		t.Errorf("coverage = %.1f%%, want >= 80%%", res.Coverage())
	}
	if res.UntestableNum < 1 {
		t.Errorf("untestable = %d, want >= 1 (clr/sa0)", res.UntestableNum)
	}
}

func TestBacktrackLimitAborts(t *testing.T) {
	// A hard circuit with an absurdly low backtrack limit must abort,
	// not hang or misreport untestable.
	nl := buildShiftChain()
	f := fault.Fault{Site: fault.Site{Gate: nl.PI("d"), Pin: -1}, SAOne: false}
	eng := New(nl, Options{DisableRandomPhase: true, BacktrackLimit: 1, MaxFrames: 2})
	_, status, _ := eng.testFault(f, time.Time{})
	// With MaxFrames=2 the fault cannot reach the PO: the engine must
	// prove untestable-within-budget or abort, never detect.
	if status == Detected {
		t.Errorf("detected a fault that needs 4 frames using only 2")
	}
}

func TestEfficiencyAccounting(t *testing.T) {
	nl, f := buildRedundant()
	all := fault.Universe(nl)
	// Mix the redundant fault's universe: coverage < 100, efficiency
	// should still be 100 (everything detected or proven redundant).
	eng := New(nl, Options{Seed: 2})
	res := eng.Run(all)
	if res.Efficiency() != 100 {
		t.Errorf("efficiency = %.1f%%, want 100%% (aborted=%d)", res.Efficiency(), res.AbortedNum)
	}
	if res.Coverage() >= 100 {
		t.Errorf("coverage = %.1f%%, expected < 100%% due to redundancy %v", res.Coverage(), f)
	}
	if res.UntestableNum == 0 {
		t.Error("redundant fault not counted untestable")
	}
}

func TestStatusString(t *testing.T) {
	if Detected.String() != "detected" || Untestable.String() != "untestable" || Aborted.String() != "aborted" {
		t.Error("Status.String broken")
	}
	if Status(42).String() != "unknown" {
		t.Error("unknown status should stringify")
	}
}

func TestControllabilityMeasures(t *testing.T) {
	nl := buildC17ish()
	cc0, cc1 := controllability(nl)
	pi := nl.PI("g1")
	if cc0[pi] != 1 || cc1[pi] != 1 {
		t.Errorf("PI controllability = %d/%d, want 1/1", cc0[pi], cc1[pi])
	}
	// NAND of two PIs: cc0 = cc1(a)+cc1(b)+1 = 3, cc1 = min(cc0)+1 = 2.
	for _, g := range nl.Gates {
		if g.Kind == netlist.Nand && nl.Gates[g.Fanin[0]].Kind == netlist.Input && nl.Gates[g.Fanin[1]].Kind == netlist.Input {
			if cc0[g.ID] != 3 || cc1[g.ID] != 2 {
				t.Errorf("NAND cc = %d/%d, want 3/2", cc0[g.ID], cc1[g.ID])
			}
			break
		}
	}
	// Sequential penalty.
	ch := buildShiftChain()
	c0, _ := controllability(ch)
	if c0[ch.DFFs[2]] <= c0[ch.DFFs[0]] {
		t.Errorf("deeper flop should be costlier: %d vs %d", c0[ch.DFFs[2]], c0[ch.DFFs[0]])
	}
}

func TestObservationDistance(t *testing.T) {
	ch := buildShiftChain()
	obs := observationDistance(ch)
	if obs[ch.DFFs[2]] != 0 {
		t.Errorf("PO flop obs = %d, want 0", obs[ch.DFFs[2]])
	}
	if obs[ch.PI("d")] <= obs[ch.DFFs[2]] {
		t.Errorf("input obs %d should exceed output flop obs %d", obs[ch.PI("d")], obs[ch.DFFs[2]])
	}
}

func TestRandomPhaseDropsFaults(t *testing.T) {
	nl := buildC17ish()
	faults := fault.Universe(nl)
	eng := New(nl, Options{Seed: 7})
	res := eng.Run(faults)
	if res.DetectedRandom == 0 {
		t.Error("random phase detected nothing on an easily testable circuit")
	}
}

func TestMuxFaultPropagation(t *testing.T) {
	n := netlist.New("muxprop")
	s := n.AddInput("s")
	a := n.AddInput("a")
	b := n.AddInput("b")
	m := n.AddGate(netlist.Mux, s, a, b)
	n.AddOutput("y", m)
	faults := fault.Universe(n)
	eng := New(n, Options{DisableRandomPhase: true})
	res := eng.Run(faults)
	if res.Coverage() != 100 {
		t.Errorf("mux coverage = %.1f%%, want 100%%", res.Coverage())
	}
}
