package atpg

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"factor/internal/factorerr"
	"factor/internal/failpoint"
	"factor/internal/fault"
	"factor/internal/netlist"
	"factor/internal/sim"
	"factor/internal/telemetry"
	"factor/internal/testability"
)

// Options configures the ATPG flow.
type Options struct {
	// MaxFrames bounds time-frame expansion. 0 derives it from the
	// circuit's sequential depth (depth+2, clamped to [1, 24]).
	MaxFrames int
	// BacktrackLimit aborts a deterministic search after this many
	// backtracks (default 512).
	BacktrackLimit int
	// RandomSequences is the random-phase budget (default 64).
	RandomSequences int
	// RandomSeqLen is the length of each random sequence. 0 derives it
	// from the sequential depth.
	RandomSeqLen int
	// Seed drives the random phase and random fill (default 1).
	Seed int64
	// TimeBudget bounds the whole run; faults not reached before the
	// deadline are left aborted. Zero means unlimited.
	TimeBudget time.Duration
	// DisableRandomPhase skips random patterns (ablation).
	DisableRandomPhase bool
	// Workers is the number of worker goroutines for the random-phase
	// fault simulation and the deterministic-phase PODEM searches.
	// <= 0 selects runtime.NumCPU(). Results are identical for every
	// worker count (see DESIGN.md, "Concurrency architecture"), except
	// under TimeBudget pressure where which faults get attempted before
	// the deadline is inherently timing-dependent.
	Workers int
	// Checkpoint, when non-nil, periodically receives a journal of the
	// run during the deterministic phase: every CheckpointEvery merged
	// faults, once more when the run is canceled, and once on
	// completion. The callback runs on the merger goroutine; an error
	// it returns aborts the run with a checkpoint-stage error.
	Checkpoint func(*Checkpoint) error
	// CheckpointEvery is the number of merged deterministic-phase
	// faults between Checkpoint calls (default 256).
	CheckpointEvery int
	// Resume, when non-nil, continues an interrupted run from its
	// journal instead of starting over. The checkpoint must have been
	// taken with the same netlist, fault list, and result-shaping
	// options — Workers and TimeBudget are free to differ — and the
	// final result is bit-identical to the uninterrupted run's.
	Resume *Checkpoint
	// Guide selects the backtrace cost model (default: the engine's
	// original ad-hoc costs; GuideSCOAP: internal/testability metrics).
	// The guide shapes search order, not outcomes, but it is part of
	// the checkpoint fingerprint because it changes which sequences
	// are generated.
	Guide Guide
}

func (o Options) withDefaults(nl *netlist.Netlist) Options {
	if o.MaxFrames <= 0 {
		d := nl.SequentialDepth()
		o.MaxFrames = clamp(d+2, 1, 24)
	}
	if o.BacktrackLimit <= 0 {
		o.BacktrackLimit = 512
	}
	if o.RandomSequences == 0 {
		o.RandomSequences = 64
	}
	if o.RandomSeqLen <= 0 {
		o.RandomSeqLen = clamp(nl.SequentialDepth()*2+4, 4, 48)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 256
	}
	return o
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// statics bundles the per-netlist read-only data shared by every PODEM
// search: evaluation order, fanout lists, PO membership, and SCOAP-like
// testability measures. Computed once per Engine; worker goroutines
// share it without synchronization because nothing mutates it after
// construction.
type statics struct {
	order    []int
	fanouts  [][]int
	poSet    map[int]bool
	cc0, cc1 []int
	obs      []int
}

// Engine runs test generation for a netlist.
type Engine struct {
	nl      *netlist.Netlist
	opts    Options
	workers int
	st      *statics
	// scoap holds the SCOAP metrics when Options.Guide == GuideSCOAP
	// (nil otherwise); its sweep counters are published as scoap.*
	// telemetry by RunContext.
	scoap *testability.Metrics
}

// New builds an engine; static testability measures are computed once,
// from the cost model Options.Guide selects.
func New(nl *netlist.Netlist, opts Options) *Engine {
	poSet := make(map[int]bool, len(nl.POs))
	for _, po := range nl.POs {
		poSet[po] = true
	}
	e := &Engine{
		nl:      nl,
		opts:    opts.withDefaults(nl),
		workers: fault.ResolveWorkers(opts.Workers),
	}
	var cc0, cc1, obs []int
	if e.opts.Guide == GuideSCOAP {
		cc0, cc1, obs, e.scoap = scoapStatics(nl)
	} else {
		cc0, cc1 = controllability(nl)
		obs = observationDistance(nl)
	}
	e.st = &statics{
		order:   nl.TopoOrder(),
		fanouts: nl.Fanouts(),
		poSet:   poSet,
		cc0:     cc0,
		cc1:     cc1,
		obs:     obs,
	}
	return e
}

// RunResult is the outcome of a full ATPG run.
type RunResult struct {
	Result *fault.Result
	// Tests holds the generated sequences (random-phase sequences that
	// detected something plus all deterministic tests).
	Tests []fault.Sequence

	TotalFaults    int
	DetectedRandom int
	DetectedDet    int
	UntestableNum  int
	AbortedNum     int
	NotAttempted   int
	// QuarantinedNum counts faults whose deterministic search panicked:
	// the panic-isolation boundary converts the crash into a structured
	// error (see Errors), classifies the fault as neither detected nor
	// untestable, and the run continues.
	QuarantinedNum int

	// Errors holds the structured quarantine errors recorded during the
	// run — PODEM panics and fault-simulation batch panics — in
	// deterministic (merge/batch) order. They describe recovered,
	// per-item failures; the run as a whole still succeeded.
	Errors []error

	RandomTime time.Duration
	DetTime    time.Duration

	// Stats are the run's deterministic work counters (see RunStats):
	// bit-identical for any worker count and across checkpoint/resume.
	Stats RunStats

	// journaledTests tracks how many of Tests have already been
	// counted into Stats.JournaledTests by checkpoint flushes.
	journaledTests uint64
}

// Coverage is the fault coverage percentage.
func (r *RunResult) Coverage() float64 { return r.Result.Coverage() }

// Efficiency is the ATPG efficiency percentage: (detected + proven
// untestable) / total.
func (r *RunResult) Efficiency() float64 {
	if r.TotalFaults == 0 {
		return 0
	}
	return 100 * float64(r.Result.NumDetected()+r.UntestableNum) / float64(r.TotalFaults)
}

// TotalTime is random-phase plus deterministic-phase time.
func (r *RunResult) TotalTime() time.Duration { return r.RandomTime + r.DetTime }

// mix64 is a splitmix64-style mixer: it derives an independent,
// well-distributed RNG seed from (base seed, stream index). Giving
// every random sequence and every random fill its own seeded stream —
// instead of sharing one RNG whose consumption order would depend on
// scheduling — is what makes the random phase and the deterministic
// fill reproducible for any worker count.
func mix64(seed, stream int64) int64 {
	z := uint64(seed) + uint64(stream)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Stream tags keep the per-sequence and per-fault RNG families
// disjoint even though both derive from Options.Seed.
const (
	streamRandomSeq = int64(0x52414e44) // random-phase sequence i
	streamFill      = int64(0x46494c4c) // random fill for fault i
)

// Run executes the two-phase flow over the given target faults. It is
// RunContext without cancellation, checkpointing, or resume — in that
// configuration the flow cannot fail, so no error is returned.
func (e *Engine) Run(faults []fault.Fault) *RunResult {
	out, _ := e.RunContext(context.Background(), faults)
	return out
}

// RunContext executes the two-phase flow over the given target faults.
//
// Both phases fan out over Options.Workers goroutines; the merged
// result is bit-identical to a single-worker run (same detected set,
// same tests in the same order) except under TimeBudget pressure. The
// random phase computes each fault's first detecting sequence — an
// intrinsic property independent of fault dropping — and replays the
// canonical drop order afterwards. The deterministic phase runs PODEM
// speculatively in fault-list chunks and merges chunk results in list
// order, replaying exactly the serial drop/fill/simulate semantics;
// see DESIGN.md, "Concurrency architecture".
//
// Cancellation: when ctx is canceled (SIGINT, -timeout), workers drain
// promptly, a final checkpoint is flushed if Options.Checkpoint is set,
// and RunContext returns the partial result together with a canceled-
// or timeout-stage error. A run resumed from that checkpoint (for any
// worker count) finishes with a result bit-identical to an
// uninterrupted run — see Checkpoint. The softer Options.TimeBudget
// keeps its old semantics: the run completes normally with unreached
// faults counted in NotAttempted, and no error.
func (e *Engine) RunContext(ctx context.Context, faults []fault.Fault) (*RunResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	res := fault.NewResult(faults)
	out := &RunResult{Result: res, TotalFaults: len(faults)}
	pool := fault.NewPool(e.nl, e.workers)
	tel := telemetry.FromContext(ctx)
	defer func() { out.publishTelemetry(tel) }()
	if e.scoap != nil {
		// SCOAP sweep work is per-Engine, not per-run: counted once here
		// so guided runs expose their static-analysis cost alongside the
		// search counters.
		tel.AddCounter("scoap.forward_sweeps", uint64(e.scoap.ForwardSweeps))
		tel.AddCounter("scoap.backward_sweeps", uint64(e.scoap.BackwardSweeps))
		tel.AddCounter("scoap.gate_visits", e.scoap.GateVisits)
	}

	deadline := time.Time{}
	if e.opts.TimeBudget > 0 {
		deadline = time.Now().Add(e.opts.TimeBudget)
	}

	var postRandom []bool
	startMerged := 0
	if ck := e.opts.Resume; ck != nil {
		if err := ck.validate(e.fingerprint(faults), len(faults)); err != nil {
			return out, err
		}
		copy(res.Detected, ck.Detected)
		postRandom = append([]bool(nil), ck.PostRandom...)
		startMerged = ck.Merged
		out.Tests = append(out.Tests, ck.Tests...)
		out.DetectedRandom = ck.DetectedRandom
		out.DetectedDet = ck.DetectedDet
		out.UntestableNum = ck.UntestableNum
		out.AbortedNum = ck.AbortedNum
		out.NotAttempted = ck.NotAttempted
		out.QuarantinedNum = ck.QuarantinedNum
		out.Stats = ck.Stats
		out.journaledTests = uint64(len(ck.Tests))
		for _, ce := range ck.Errors {
			fe := factorerr.New(factorerr.StageATPG, factorerr.CodePanic, "%s", ce.Message)
			fe.Fault = ce.Fault
			out.Errors = append(out.Errors, fe)
		}
	} else {
		// Phase 1: random sequences with fault dropping. Never
		// journaled — the phase is seeded and cheap, so an interrupted
		// run re-executes it identically on resume.
		start := time.Now()
		if !e.opts.DisableRandomPhase {
			sp := tel.StartSpan("atpg.random")
			err := e.randomPhase(ctx, out, deadline)
			sp.End()
			if err != nil {
				out.RandomTime = time.Since(start)
				return out, err
			}
		}
		out.RandomTime = time.Since(start)
		postRandom = append([]bool(nil), res.Detected...)
	}

	// Phase 2: deterministic PODEM with time-frame expansion and fault
	// dropping.
	start := time.Now()
	sp := tel.StartSpan("atpg.deterministic")
	err := e.deterministicPhase(ctx, out, pool, deadline, postRandom, startMerged)
	sp.End()
	out.DetTime = time.Since(start)
	return out, err
}

// cancelErr classifies a context interruption as canceled or timed out.
func cancelErr(ctxErr error) error {
	return factorerr.FromContext(factorerr.StageATPG, ctxErr)
}

// randomPhase generates the whole random-sequence budget up front (each
// sequence from its own seeded RNG), computes per-fault first-detection
// indices in parallel (fault.FirstDetections rides the event-driven
// cone-restricted engine, sharing one good trace per sequence across
// all batches — see DESIGN.md §10), and then merges in sequence order:
// sequence i is kept iff it is the first detector of at least one
// fault. That merge
// is exactly what serial dropped simulation produces — a dropped pass
// detects fault f with sequence i iff i is f's first detector — so the
// outcome is independent of worker count.
// A fault-simulation batch that panics during the pass is quarantined
// by the pool (its faults report no random detection and stay eligible
// for the deterministic phase); the structured errors are recorded on
// the result. A canceled context abandons the pass wholesale — merging
// a partial first-detection pass would match no serial run.
func (e *Engine) randomPhase(ctx context.Context, out *RunResult, deadline time.Time) error {
	res := out.Result
	seqs := make([]fault.Sequence, e.opts.RandomSequences)
	for i := range seqs {
		rng := rand.New(rand.NewSource(mix64(e.opts.Seed, streamRandomSeq+int64(i)<<8)))
		seqs[i] = e.randomSequence(rng)
	}
	first, simStats, errs := fault.FirstDetections(ctx, e.nl, res.Faults, seqs, e.workers, deadline)
	out.Errors = append(out.Errors, errs...)
	if err := ctx.Err(); err != nil {
		return cancelErr(err)
	}
	out.Stats.RandomSequences += uint64(len(seqs))
	out.Stats.Sim.Accumulate(simStats)

	detBySeq := make([]int, len(seqs))
	for fi, si := range first {
		if si >= 0 {
			res.Detected[fi] = true
			detBySeq[si]++
		}
	}
	for si, n := range detBySeq {
		if n > 0 {
			out.Tests = append(out.Tests, seqs[si])
			out.DetectedRandom += n
		}
	}
	return nil
}

// Chunk-result classification for the deterministic phase.
const (
	specAttempted = iota // testFault ran; status/seq are valid
	specSkipped          // worker observed the fault already detected
	specDeadline         // worker reached the fault after the deadline
	specCanceled         // worker observed a canceled context; merge stops here
	specPanic            // testFault panicked; the fault is quarantined
)

// specResult is one worker's speculative outcome for one fault.
type specResult struct {
	kind   int
	status Status
	seq    fault.Sequence
	stats  searchStats // search effort; counted only if the merger uses the result
	err    error       // specPanic only: the structured quarantine error
}

// testFaultPanicHook, when non-nil, runs before every deterministic
// search — the test-only injection point for exercising the PODEM
// worker panic-isolation boundary (see TestDeterministicQuarantine).
var testFaultPanicHook func(f fault.Fault)

// safeTestFault runs testFault behind the worker panic-isolation
// boundary: a panicking search yields a quarantine result carrying a
// structured error instead of killing the process. Sibling faults and
// the merge replay are unaffected, so the remaining run stays
// deterministic.
func (e *Engine) safeTestFault(f fault.Fault, deadline time.Time) (r specResult) {
	defer func() {
		if rec := recover(); rec != nil {
			r = specResult{
				kind: specPanic,
				err:  factorerr.FromPanic(factorerr.StageATPG, rec).WithFault(f.String()),
			}
		}
	}()
	if testFaultPanicHook != nil {
		testFaultPanicHook(f)
	}
	// Failpoint atpg.search: keyed by the fault's identity, not an
	// occurrence counter, so which faults take an injected failure is
	// invariant under worker count and speculative re-search. An
	// injected error quarantines the fault exactly like a caught panic;
	// a panic action exercises the recover above.
	if err := failpoint.HitKey("atpg.search", f.Key()); err != nil {
		return specResult{
			kind: specPanic,
			err:  factorerr.Wrap(factorerr.StageATPG, factorerr.CodePanic, err).WithFault(f.String()),
		}
	}
	seq, status, stats := e.testFault(f, deadline)
	return specResult{kind: specAttempted, status: status, seq: seq, stats: stats}
}

// deterministicPhase runs PODEM over the undetected faults with a
// speculative ordered merge. Workers pull contiguous fault-list chunks
// from a shared counter and search each fault independently (checking
// the shared canonical detected-set at pickup purely as an
// optimization); the merger — this goroutine — consumes chunk results
// strictly in fault-list order and replays the serial semantics:
// canonically detected faults are dropped, detected tests are
// random-filled with a per-fault-index RNG and fault-simulated to
// update the canonical set. Because the canonical detected-set only
// ever grows, a worker that observed "detected" and skipped is always
// confirmed by the merger, and a worker that searched a fault the
// merger later drops just wasted speculative work — either way the
// merged output matches a single-worker run exactly.
// Resume: the pending list is derived from the post-random detected
// bitmap — never from the current canonical set — so it is identical
// across interruptions, and resuming just skips the first startMerged
// entries of the same list.
//
// Cancellation: workers observe the context at fault pickup and emit
// specCanceled markers; the merger stops at the first one (recording
// the merge position in a final checkpoint) and returns a structured
// canceled/timeout error. Chunk channels are buffered, so workers
// never block on the stopped merger and the drain cannot deadlock.
func (e *Engine) deterministicPhase(ctx context.Context, out *RunResult, pool *fault.Pool, deadline time.Time, postRandom []bool, startMerged int) error {
	res := out.Result
	var pending []int
	for i := range res.Faults {
		if !postRandom[i] {
			pending = append(pending, i)
		}
	}
	work := pending[startMerged:]
	if len(work) == 0 {
		return e.flushCheckpoint(out, postRandom, startMerged)
	}

	// ictx lets the merger abandon the run (checkpoint write failure)
	// without waiting for workers to grind through the remaining
	// chunks; it also propagates the caller's cancellation.
	ictx, icancel := context.WithCancel(ctx)
	defer icancel()

	// Chunk size depends only on (len(work), workers) — never on
	// timing — so the chunk boundaries, and therefore the merge replay,
	// are reproducible. Small chunks keep workers load-balanced; the
	// clamp bounds per-chunk result buffering.
	cs := clamp(len(work)/(e.workers*4), 1, 64)
	nchunks := (len(work) + cs - 1) / cs

	// mu guards the canonical detected-set (res.Detected) and the pool
	// simulators used by the merger. Workers take it only for the
	// skip-check snapshot at fault pickup.
	var mu sync.Mutex
	chans := make([]chan []specResult, nchunks)
	for i := range chans {
		chans[i] = make(chan []specResult, 1)
	}

	var next int64
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(atomic.AddInt64(&next, 1)) - 1
				if c >= nchunks {
					return
				}
				lo := c * cs
				hi := min(lo+cs, len(work))
				results := make([]specResult, hi-lo)
				for k, fi := range work[lo:hi] {
					if ictx.Err() != nil {
						results[k] = specResult{kind: specCanceled}
						continue
					}
					if !deadline.IsZero() && time.Now().After(deadline) {
						results[k] = specResult{kind: specDeadline}
						continue
					}
					mu.Lock()
					dropped := res.Detected[fi]
					mu.Unlock()
					if dropped {
						results[k] = specResult{kind: specSkipped}
						continue
					}
					results[k] = e.safeTestFault(res.Faults[fi], deadline)
				}
				chans[c] <- results
			}
		}()
	}

	tel := telemetry.FromContext(ctx)
	merged := startMerged
	var runErr error
mergeLoop:
	for c := 0; c < nchunks; c++ {
		results := <-chans[c]
		lo := c * cs
		for k, r := range results {
			if r.kind == specCanceled {
				runErr = cancelErr(ctx.Err())
				break mergeLoop
			}
			// Failpoint atpg.merge: keyed by fault index, so an injected
			// failure lands on the same merge position for any worker
			// count. An error here aborts the run like a checkpoint
			// flush failure — the final flush below still journals the
			// merge position reached.
			if err := failpoint.HitKey("atpg.merge", uint64(work[lo+k])); err != nil {
				runErr = factorerr.Wrap(factorerr.StageATPG, factorerr.CodeInternal, err)
				break mergeLoop
			}
			e.mergeOne(out, pool, work[lo+k], r, deadline, &mu)
			// Drain per merge so every checkpoint flush journals the sim
			// work of exactly the merges it covers (split-invariant).
			out.Stats.Sim.Accumulate(pool.DrainStats())
			merged++
			if tel.ProgressEnabled() { // skip the O(faults) coverage scan when quiet
				tel.Progressf("atpg: %d/%d deterministic faults merged, %d detected, coverage %.1f%%",
					merged, len(pending), res.NumDetected(), res.Coverage())
			}
			if e.opts.Checkpoint != nil && (merged-startMerged)%e.opts.CheckpointEvery == 0 {
				if err := e.flushCheckpoint(out, postRandom, merged); err != nil {
					runErr = err
					break mergeLoop
				}
			}
		}
	}
	icancel()
	wg.Wait()
	out.Errors = append(out.Errors, pool.DrainErrors()...)
	if err := e.flushCheckpoint(out, postRandom, merged); err != nil && runErr == nil {
		runErr = err
	}
	return runErr
}

// mergeOne replays the serial semantics for one fault on the merger
// goroutine: drop if canonically detected, random-fill a detecting
// sequence from the fault's own RNG stream, fault-simulate it into the
// canonical set, and account the outcome. specPanic results quarantine
// the fault: the structured error is recorded and the fault is
// classified neither detected nor untestable.
func (e *Engine) mergeOne(out *RunResult, pool *fault.Pool, fi int, r specResult, deadline time.Time, mu *sync.Mutex) {
	res := out.Result
	mu.Lock()
	dropped := res.Detected[fi]
	mu.Unlock()
	if dropped {
		return
	}
	switch r.kind {
	case specDeadline:
		out.NotAttempted++
		return
	case specPanic:
		out.QuarantinedNum++
		out.Errors = append(out.Errors, r.err)
		return
	case specSkipped:
		// Unreachable when the monotonicity invariant holds (the
		// canonical set never shrinks), but dropping must stay an
		// optimization, never a correctness dependency: recompute.
		if r = e.safeTestFault(res.Faults[fi], deadline); r.kind == specPanic {
			out.QuarantinedNum++
			out.Errors = append(out.Errors, r.err)
			return
		}
	}
	// Only searches the merger actually uses are counted: speculative
	// effort on faults dropped above never lands in the deterministic
	// plane, so the totals match a single-worker run.
	out.Stats.Searches++
	out.Stats.Decisions += r.stats.decisions
	out.Stats.Backtracks += r.stats.backtracks
	switch r.status {
	case Detected:
		rng := rand.New(rand.NewSource(mix64(e.opts.Seed, streamFill+int64(fi)<<8)))
		filled := e.fillRandom(r.seq, rng)
		mu.Lock()
		before := res.NumDetected()
		pool.RunSequence(res, filled)
		usedFallback := false
		if !res.Detected[fi] {
			// Random fill can mask the detection through X-optimism
			// differences; fall back to the unfilled sequence.
			pool.RunSequence(res, r.seq)
			usedFallback = true
		}
		detected := res.Detected[fi]
		newly := res.NumDetected() - before
		mu.Unlock()
		if !detected {
			// The PODEM model and the fault simulator agree on
			// 3-valued semantics, so this should not happen; count
			// it as aborted to stay conservative.
			out.AbortedNum++
			return
		}
		out.Tests = append(out.Tests, filled)
		if usedFallback {
			// The filled sequence carries collateral detections already
			// folded into the canonical set, but the target fault was
			// only detected by the unfilled sequence — the exported
			// suite must contain both or replaying it would not
			// re-detect the fault.
			out.Tests = append(out.Tests, r.seq)
		}
		out.DetectedDet += newly
	case Untestable:
		out.UntestableNum++
	case Aborted:
		out.AbortedNum++
	}
}

// flushCheckpoint snapshots the run at a merge position and hands it to
// the Checkpoint callback. It runs only on the merger goroutine, which
// is the sole mutator of the result, so the snapshot needs no lock.
func (e *Engine) flushCheckpoint(out *RunResult, postRandom []bool, merged int) error {
	if e.opts.Checkpoint == nil {
		return nil
	}
	// Count the journal-record delta before snapshotting: the final
	// JournaledTests value equals the exported test count for any flush
	// cadence, which keeps the counter split-invariant even though the
	// number of flushes is not.
	if n := uint64(len(out.Tests)); n > out.journaledTests {
		out.Stats.JournaledTests += n - out.journaledTests
		out.journaledTests = n
	}
	ck := &Checkpoint{
		Version:        CheckpointVersion,
		Fingerprint:    e.fingerprint(out.Result.Faults),
		PostRandom:     append([]bool(nil), postRandom...),
		Detected:       append([]bool(nil), out.Result.Detected...),
		Merged:         merged,
		Tests:          append([]fault.Sequence(nil), out.Tests...),
		DetectedRandom: out.DetectedRandom,
		DetectedDet:    out.DetectedDet,
		UntestableNum:  out.UntestableNum,
		AbortedNum:     out.AbortedNum,
		NotAttempted:   out.NotAttempted,
		QuarantinedNum: out.QuarantinedNum,
		Stats:          out.Stats,
	}
	for _, err := range out.Errors {
		ce := CheckpointError{Message: err.Error()}
		var fe *factorerr.Error
		if errors.As(err, &fe) {
			ce.Fault = fe.Fault
		}
		ck.Errors = append(ck.Errors, ce)
	}
	if err := e.opts.Checkpoint(ck); err != nil {
		return factorerr.Wrap(factorerr.StageATPG, factorerr.CodeCheckpoint, err)
	}
	return nil
}

// testFault escalates time frames until the fault is detected, proven
// untestable at the maximum frame budget, or aborted. The search is
// fully deterministic: given the same (fault, options), it returns the
// same sequence regardless of which goroutine runs it.
func (e *Engine) testFault(f fault.Fault, deadline time.Time) (fault.Sequence, Status, searchStats) {
	var st searchStats
	last := Untestable
	for frames := 1; frames <= e.opts.MaxFrames; frames++ {
		p := newPodem(e.nl, f, frames, e.opts.BacktrackLimit, deadline, e.st)
		seq, status := p.run()
		st.decisions += uint64(p.decisions)
		st.backtracks += uint64(p.backtracks)
		switch status {
		case Detected:
			return seq, Detected, st
		case Aborted:
			return nil, Aborted, st
		}
		last = status
	}
	return nil, last, st
}

// randomSequence builds a fully specified random input sequence.
func (e *Engine) randomSequence(rng *rand.Rand) fault.Sequence {
	seq := make(fault.Sequence, e.opts.RandomSeqLen)
	for t := range seq {
		vec := fault.Vector{}
		for _, name := range e.nl.PINames {
			vec[name] = sim.Logic(rng.Intn(2))
		}
		seq[t] = vec
	}
	return seq
}

// fillRandom completes the unassigned PIs of a deterministic test with
// random binary values (more collateral fault drops per test).
func (e *Engine) fillRandom(seq fault.Sequence, rng *rand.Rand) fault.Sequence {
	out := make(fault.Sequence, len(seq))
	for t, vec := range seq {
		nv := fault.Vector{}
		for _, name := range e.nl.PINames {
			if v, ok := vec[name]; ok {
				nv[name] = v
			} else {
				nv[name] = sim.Logic(rng.Intn(2))
			}
		}
		out[t] = nv
	}
	return out
}
