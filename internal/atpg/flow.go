package atpg

import (
	"math/rand"
	"time"

	"factor/internal/fault"
	"factor/internal/netlist"
	"factor/internal/sim"
)

// Options configures the ATPG flow.
type Options struct {
	// MaxFrames bounds time-frame expansion. 0 derives it from the
	// circuit's sequential depth (depth+2, clamped to [1, 24]).
	MaxFrames int
	// BacktrackLimit aborts a deterministic search after this many
	// backtracks (default 512).
	BacktrackLimit int
	// RandomSequences is the random-phase budget (default 64).
	RandomSequences int
	// RandomSeqLen is the length of each random sequence. 0 derives it
	// from the sequential depth.
	RandomSeqLen int
	// Seed drives the random phase and random fill (default 1).
	Seed int64
	// TimeBudget bounds the whole run; faults not reached before the
	// deadline are left aborted. Zero means unlimited.
	TimeBudget time.Duration
	// DisableRandomPhase skips random patterns (ablation).
	DisableRandomPhase bool
}

func (o Options) withDefaults(nl *netlist.Netlist) Options {
	if o.MaxFrames <= 0 {
		d := nl.SequentialDepth()
		o.MaxFrames = clamp(d+2, 1, 24)
	}
	if o.BacktrackLimit <= 0 {
		o.BacktrackLimit = 512
	}
	if o.RandomSequences == 0 {
		o.RandomSequences = 64
	}
	if o.RandomSeqLen <= 0 {
		o.RandomSeqLen = clamp(nl.SequentialDepth()*2+4, 4, 48)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Engine runs test generation for a netlist.
type Engine struct {
	nl   *netlist.Netlist
	opts Options
	cc0  []int
	cc1  []int
	obs  []int
}

// New builds an engine; static testability measures are computed once.
func New(nl *netlist.Netlist, opts Options) *Engine {
	cc0, cc1 := controllability(nl)
	return &Engine{
		nl:   nl,
		opts: opts.withDefaults(nl),
		cc0:  cc0,
		cc1:  cc1,
		obs:  observationDistance(nl),
	}
}

// RunResult is the outcome of a full ATPG run.
type RunResult struct {
	Result *fault.Result
	// Tests holds the generated sequences (random-phase sequences that
	// detected something plus all deterministic tests).
	Tests []fault.Sequence

	TotalFaults    int
	DetectedRandom int
	DetectedDet    int
	UntestableNum  int
	AbortedNum     int
	NotAttempted   int

	RandomTime time.Duration
	DetTime    time.Duration
}

// Coverage is the fault coverage percentage.
func (r *RunResult) Coverage() float64 { return r.Result.Coverage() }

// Efficiency is the ATPG efficiency percentage: (detected + proven
// untestable) / total.
func (r *RunResult) Efficiency() float64 {
	if r.TotalFaults == 0 {
		return 0
	}
	return 100 * float64(r.Result.NumDetected()+r.UntestableNum) / float64(r.TotalFaults)
}

// TotalTime is random-phase plus deterministic-phase time.
func (r *RunResult) TotalTime() time.Duration { return r.RandomTime + r.DetTime }

// Run executes the two-phase flow over the given target faults.
func (e *Engine) Run(faults []fault.Fault) *RunResult {
	res := fault.NewResult(faults)
	out := &RunResult{Result: res, TotalFaults: len(faults)}
	rng := rand.New(rand.NewSource(e.opts.Seed))
	ps := fault.NewParallel(e.nl)

	deadline := time.Time{}
	if e.opts.TimeBudget > 0 {
		deadline = time.Now().Add(e.opts.TimeBudget)
	}

	// Phase 1: random sequences with fault dropping.
	start := time.Now()
	if !e.opts.DisableRandomPhase {
		for i := 0; i < e.opts.RandomSequences; i++ {
			if res.NumDetected() == len(faults) {
				break
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				break
			}
			seq := e.randomSequence(rng)
			if n := ps.RunSequence(res, seq); n > 0 {
				out.Tests = append(out.Tests, seq)
				out.DetectedRandom += n
			}
		}
	}
	out.RandomTime = time.Since(start)

	// Phase 2: deterministic PODEM with time-frame expansion and fault
	// dropping.
	start = time.Now()
	for i := range faults {
		if res.Detected[i] {
			continue
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			out.NotAttempted++
			continue
		}
		seq, status := e.testFault(faults[i], deadline)
		switch status {
		case Detected:
			filled := e.fillRandom(seq, rng)
			before := res.NumDetected()
			ps.RunSequence(res, filled)
			if !res.Detected[i] {
				// Random fill can mask the detection through X-optimism
				// differences; fall back to the unfilled sequence.
				ps.RunSequence(res, seq)
			}
			if !res.Detected[i] {
				// The PODEM model and the fault simulator agree on
				// 3-valued semantics, so this should not happen; count
				// it as aborted to stay conservative.
				out.AbortedNum++
				continue
			}
			out.Tests = append(out.Tests, filled)
			out.DetectedDet += res.NumDetected() - before
		case Untestable:
			out.UntestableNum++
		case Aborted:
			out.AbortedNum++
		}
	}
	out.DetTime = time.Since(start)
	return out
}

// testFault escalates time frames until the fault is detected, proven
// untestable at the maximum frame budget, or aborted.
func (e *Engine) testFault(f fault.Fault, deadline time.Time) (fault.Sequence, Status) {
	last := Untestable
	for frames := 1; frames <= e.opts.MaxFrames; frames++ {
		p := newPodem(e.nl, f, frames, e.opts.BacktrackLimit, deadline, e.cc0, e.cc1, e.obs)
		seq, status := p.run()
		switch status {
		case Detected:
			return seq, Detected
		case Aborted:
			return nil, Aborted
		}
		last = status
	}
	return nil, last
}

// randomSequence builds a fully specified random input sequence.
func (e *Engine) randomSequence(rng *rand.Rand) fault.Sequence {
	seq := make(fault.Sequence, e.opts.RandomSeqLen)
	for t := range seq {
		vec := fault.Vector{}
		for _, name := range e.nl.PINames {
			vec[name] = sim.Logic(rng.Intn(2))
		}
		seq[t] = vec
	}
	return seq
}

// fillRandom completes the unassigned PIs of a deterministic test with
// random binary values (more collateral fault drops per test).
func (e *Engine) fillRandom(seq fault.Sequence, rng *rand.Rand) fault.Sequence {
	out := make(fault.Sequence, len(seq))
	for t, vec := range seq {
		nv := fault.Vector{}
		for _, name := range e.nl.PINames {
			if v, ok := vec[name]; ok {
				nv[name] = v
			} else {
				nv[name] = sim.Logic(rng.Intn(2))
			}
		}
		out[t] = nv
	}
	return out
}
