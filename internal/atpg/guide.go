package atpg

import (
	"fmt"

	"factor/internal/netlist"
	"factor/internal/testability"
)

// Guide selects the static cost model PODEM's backtrace uses to choose
// which X-valued input to justify first and which D-frontier gate to
// drive toward an output. The guide changes only the order in which the
// complete search explores assignments — never which faults are
// testable — so for a sufficient backtrack limit every guide detects
// the same fault set; a better guide just reaches the answer with fewer
// decisions and backtracks.
type Guide int

const (
	// GuideDefault keeps the engine's original ad-hoc costs: a
	// SCOAP-like controllability fixpoint with a flat sequential
	// penalty, and plain distance-to-PO observation costs.
	GuideDefault Guide = iota
	// GuideSCOAP replaces both planes with the internal/testability
	// SCOAP metrics: controllability becomes CC weighted by the
	// sequential plane (CC + seqWeight*SC, saturating), observation
	// cost becomes CO + seqWeight*SO. Costs remain pure functions of
	// the netlist, and ties still break by pin order / net ID, so
	// guided runs stay bit-identical for any worker count and across
	// checkpoint/resume.
	GuideSCOAP
)

// seqWeight folds the sequential SCOAP plane into the combinational
// one: each flop crossing costs as much as seqWeight logic levels,
// making "one more clock cycle" decisively more expensive than any
// plausible combinational detour (mirrors the default guide's flat
// DFF penalty of 10).
const seqWeight = 8

func (g Guide) String() string {
	switch g {
	case GuideDefault:
		return "default"
	case GuideSCOAP:
		return "scoap"
	}
	return fmt.Sprintf("Guide(%d)", int(g))
}

// ParseGuide converts a -guide flag value.
func ParseGuide(s string) (Guide, error) {
	switch s {
	case "", "default":
		return GuideDefault, nil
	case "scoap":
		return GuideSCOAP, nil
	}
	return GuideDefault, fmt.Errorf("atpg: unknown guide %q (want default or scoap)", s)
}

// scoapStatics builds the PODEM statics cost arrays from the SCOAP
// metrics. testability.Inf and costInf are the same value, so
// saturation carries over; the weighted sums saturate rather than
// exceed costInf.
func scoapStatics(nl *netlist.Netlist) (cc0, cc1, obs []int, m *testability.Metrics) {
	m = testability.Compute(nl.Compile())
	n := len(nl.Gates)
	cc0 = make([]int, n)
	cc1 = make([]int, n)
	obs = make([]int, n)
	weigh := func(c, s int32) int {
		v := int(c) + seqWeight*int(s)
		if v > costInf {
			return costInf
		}
		return v
	}
	for i := 0; i < n; i++ {
		cc0[i] = weigh(m.CC0[i], m.SC0[i])
		cc1[i] = weigh(m.CC1[i], m.SC1[i])
		obs[i] = weigh(m.CO[i], m.SO[i])
	}
	return cc0, cc1, obs, m
}
