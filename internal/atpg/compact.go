package atpg

import (
	"factor/internal/fault"
	"factor/internal/netlist"
)

// CompactResult reports the outcome of test-set compaction.
type CompactResult struct {
	Before    int // sequences before compaction
	After     int // sequences kept
	CyclesIn  int
	CyclesOut int
	// Coverage is the detected-fault count of the compacted set (it
	// never drops below the original set's).
	Coverage int
}

// Compact performs reverse-order fault-simulation compaction of a test
// set: sequences are replayed newest-first with fault dropping, and a
// sequence that detects nothing not already detected by later
// sequences is discarded. Deterministic tests generated late in a run
// tend to subsume the random patterns generated early, so replaying in
// reverse order keeps the strong tests; this is the classic "reverse
// order fault simulation" static compaction used between ATPG phases.
//
// The returned slice preserves the original relative order of the kept
// sequences.
func Compact(nl *netlist.Netlist, faults []fault.Fault, tests []fault.Sequence) ([]fault.Sequence, CompactResult) {
	res := CompactResult{Before: len(tests)}
	for _, t := range tests {
		res.CyclesIn += len(t)
	}
	if len(tests) == 0 {
		return nil, res
	}

	keep := make([]bool, len(tests))
	acc := fault.NewResult(faults)
	ps := fault.NewParallel(nl)
	for i := len(tests) - 1; i >= 0; i-- {
		if n := ps.RunSequence(acc, tests[i]); n > 0 {
			keep[i] = true
		}
	}
	var out []fault.Sequence
	for i, k := range keep {
		if k {
			out = append(out, tests[i])
			res.CyclesOut += len(tests[i])
		}
	}
	res.After = len(out)
	res.Coverage = acc.NumDetected()
	return out, res
}

// Validate fault-simulates a test set from scratch and returns the
// detected-fault count — used to confirm a compacted set retains the
// original coverage.
func Validate(nl *netlist.Netlist, faults []fault.Fault, tests []fault.Sequence) int {
	res := fault.NewResult(faults)
	ps := fault.NewParallel(nl)
	for _, t := range tests {
		ps.RunSequence(res, t)
	}
	return res.NumDetected()
}
