package atpg

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"factor/internal/factorerr"
	"factor/internal/fault"
)

// TestCheckpointResumeBitIdentical is the resume acceptance criterion:
// cancel a run mid-flight at several points, resume it from the last
// flushed checkpoint — possibly with a different worker count — and
// demand a final result bit-identical to an uninterrupted run.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	nl := randomSeqCircuit(rng, 6, 200)
	faults := fault.Universe(nl)
	base := Options{Seed: 5, MaxFrames: 4, BacktrackLimit: 64, RandomSequences: 8, CheckpointEvery: 4}

	refOpts := base
	refOpts.Workers = 1
	ref := New(nl, refOpts).Run(faults)

	canceled := 0
	for _, cancelAfter := range []int{1, 3, 7} {
		for _, workers := range []int{1, 4} {
			for _, resumeWorkers := range []int{1, 2, 8} {
				ctx, cancel := context.WithCancel(context.Background())
				var last *Checkpoint
				flushes := 0
				opts := base
				opts.Workers = workers
				opts.Checkpoint = func(ck *Checkpoint) error {
					last = ck
					flushes++
					if flushes == cancelAfter {
						cancel()
					}
					return nil
				}
				got, err := New(nl, opts).RunContext(ctx, faults)
				cancel()

				name := formatName(cancelAfter, workers) + " resume-j" + string(rune('0'+resumeWorkers))
				if err == nil {
					// The run outran the cancellation; it must already
					// match the reference.
					runsEqual(t, name+" (uncanceled)", ref, got)
					continue
				}
				canceled++
				if !errors.Is(err, &factorerr.Error{Stage: factorerr.StageATPG, Code: factorerr.CodeCanceled}) {
					t.Fatalf("%s: cancellation error is not structured: %v", name, err)
				}
				if last == nil {
					t.Fatalf("%s: canceled run flushed no checkpoint", name)
				}

				ropts := base
				ropts.Workers = resumeWorkers
				ropts.Resume = last
				resumed, rerr := New(nl, ropts).RunContext(context.Background(), faults)
				if rerr != nil {
					t.Fatalf("%s: resume failed: %v", name, rerr)
				}
				runsEqual(t, name, ref, resumed)
			}
		}
	}
	if canceled == 0 {
		t.Fatal("no run was actually canceled; the test exercised nothing")
	}
}

// TestTimingRandomCancelResume cancels at wall-clock-random points —
// including possibly inside the random phase, where no checkpoint
// exists and resume degenerates to a fresh run — and checks the
// resumed result is still bit-identical to the uninterrupted one.
func TestTimingRandomCancelResume(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	nl := randomSeqCircuit(rng, 6, 220)
	faults := fault.Universe(nl)
	base := Options{Seed: 9, MaxFrames: 4, BacktrackLimit: 64, RandomSequences: 8, CheckpointEvery: 2}

	refOpts := base
	refOpts.Workers = 1
	ref := New(nl, refOpts).Run(faults)

	for trial, delay := range []time.Duration{500 * time.Microsecond, 2 * time.Millisecond, 8 * time.Millisecond, 30 * time.Millisecond} {
		ctx, cancel := context.WithTimeout(context.Background(), delay)
		var last *Checkpoint
		opts := base
		opts.Workers = 4
		opts.Checkpoint = func(ck *Checkpoint) error { last = ck; return nil }
		got, err := New(nl, opts).RunContext(ctx, faults)
		cancel()
		if err == nil {
			runsEqual(t, "trial uncanceled", ref, got)
			continue
		}
		if !errors.Is(err, &factorerr.Error{Code: factorerr.CodeTimeout}) &&
			!errors.Is(err, &factorerr.Error{Code: factorerr.CodeCanceled}) {
			t.Fatalf("trial %d: unexpected interruption error: %v", trial, err)
		}

		ropts := base
		ropts.Workers = 2
		ropts.Resume = last // may be nil: canceled before any flush
		if last == nil {
			ropts.Resume = nil
			resumed := New(nl, ropts).Run(faults)
			runsEqual(t, "trial fresh-after-random-phase-cancel", ref, resumed)
			continue
		}
		resumed, rerr := New(nl, ropts).RunContext(context.Background(), faults)
		if rerr != nil {
			t.Fatalf("trial %d: resume failed: %v", trial, rerr)
		}
		runsEqual(t, "trial resumed", ref, resumed)
	}
}

// TestDeterministicQuarantine injects a panic into the PODEM search of
// chosen faults (test hook) and checks the acceptance criterion: the
// run survives, the faults are quarantined with structured errors, and
// the remaining results are bit-identical for every worker count.
func TestDeterministicQuarantine(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	nl := randomSeqCircuit(rng, 5, 140)
	faults := fault.Universe(nl)
	mid := faults[len(faults)/2]
	testFaultPanicHook = func(f fault.Fault) {
		if f == faults[0] || f == mid {
			panic("injected podem panic")
		}
	}
	defer func() { testFaultPanicHook = nil }()

	base := Options{Seed: 5, MaxFrames: 4, BacktrackLimit: 64, DisableRandomPhase: true}
	var ref *RunResult
	for _, workers := range []int{1, 2, 4, 8} {
		opts := base
		opts.Workers = workers
		got, err := New(nl, opts).RunContext(context.Background(), faults)
		if err != nil {
			t.Fatalf("workers=%d: quarantine must not fail the run: %v", workers, err)
		}
		// faults[0] is the first merged fault: nothing can have dropped
		// it, so it is always quarantined.
		if got.QuarantinedNum < 1 {
			t.Fatalf("workers=%d: QuarantinedNum = %d, want >= 1", workers, got.QuarantinedNum)
		}
		// Note: a quarantined fault may still end up Detected — another
		// fault's test can catch it collaterally; quarantine only skips
		// its own search.
		nPanics := 0
		for _, qerr := range got.Errors {
			if !errors.Is(qerr, &factorerr.Error{Stage: factorerr.StageATPG, Code: factorerr.CodePanic}) {
				t.Fatalf("workers=%d: error %v is not a structured ATPG panic", workers, qerr)
			}
			var fe *factorerr.Error
			if !errors.As(qerr, &fe) || fe.Fault == "" || len(fe.Stack) == 0 {
				t.Fatalf("workers=%d: quarantine error lacks fault identity or stack: %v", workers, qerr)
			}
			nPanics++
		}
		if nPanics != got.QuarantinedNum {
			t.Fatalf("workers=%d: %d errors vs QuarantinedNum %d", workers, nPanics, got.QuarantinedNum)
		}
		if ref == nil {
			ref = got
		} else {
			runsEqual(t, "quarantine workers invariance", ref, got)
			if got.QuarantinedNum != ref.QuarantinedNum {
				t.Fatalf("workers=%d: QuarantinedNum %d diverges from %d", workers, got.QuarantinedNum, ref.QuarantinedNum)
			}
		}
	}
}

// TestCheckpointFileRoundTrip covers the journal encoding: atomic
// write, load, field equality, and version rejection.
func TestCheckpointFileRoundTrip(t *testing.T) {
	ck := &Checkpoint{
		Version:     CheckpointVersion,
		Fingerprint: "00deadbeef00cafe",
		PostRandom:  []bool{true, false, true},
		Detected:    []bool{true, false, true},
		Merged:      1,
		Tests: []fault.Sequence{
			{{"a": 0, "b": 1}, {"a": 1, "b": 1}},
		},
		DetectedRandom: 2,
		DetectedDet:    1,
		QuarantinedNum: 1,
		Errors:         []CheckpointError{{Fault: "g3/sa1", Message: "boom"}},
	}
	path := filepath.Join(t.TempDir(), "atpg.ckpt")
	if err := ck.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ck, got) {
		t.Fatalf("round trip diverged:\nwrote %+v\nread  %+v", ck, got)
	}

	bad := *ck
	bad.Version = CheckpointVersion + 1
	if err := bad.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); !errors.Is(err, &factorerr.Error{Code: factorerr.CodeCheckpoint}) {
		t.Fatalf("version mismatch error = %v, want checkpoint-stage error", err)
	}

	if _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "missing.ckpt")); err == nil {
		t.Fatal("loading a missing checkpoint succeeded")
	} else if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing-file error does not unwrap to os.ErrNotExist: %v", err)
	}
}

// TestResumeRejectsMismatchedCheckpoint: a checkpoint taken under
// different result-shaping options (here: a different seed) must be
// refused, not silently merged into a corrupt run.
func TestResumeRejectsMismatchedCheckpoint(t *testing.T) {
	nl := buildC17ish()
	faults := fault.Universe(nl)

	var last *Checkpoint
	opts := Options{Seed: 5, Workers: 1, Checkpoint: func(ck *Checkpoint) error { last = ck; return nil }}
	if _, err := New(nl, opts).RunContext(context.Background(), faults); err != nil {
		t.Fatal(err)
	}
	if last == nil {
		t.Fatal("completed run flushed no final checkpoint")
	}

	ropts := Options{Seed: 6, Workers: 1, Resume: last}
	if _, err := New(nl, ropts).RunContext(context.Background(), faults); !errors.Is(err, &factorerr.Error{Code: factorerr.CodeCheckpoint}) {
		t.Fatalf("seed-mismatched resume error = %v, want checkpoint-stage error", err)
	}

	// Same options: resuming a completed run is a no-op that reproduces
	// the final result.
	ok := Options{Seed: 5, Workers: 4, Resume: last}
	resumed, err := New(nl, ok).RunContext(context.Background(), faults)
	if err != nil {
		t.Fatal(err)
	}
	full := New(nl, Options{Seed: 5, Workers: 1}).Run(faults)
	runsEqual(t, "resume-completed", full, resumed)
}

// TestRunContextPreCanceled: an already-canceled context fails fast
// with a structured canceled error that maps to the partial exit code.
func TestRunContextPreCanceled(t *testing.T) {
	nl := buildC17ish()
	faults := fault.Universe(nl)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := New(nl, Options{Seed: 1, Workers: 2}).RunContext(ctx, faults)
	if !errors.Is(err, &factorerr.Error{Code: factorerr.CodeCanceled}) {
		t.Fatalf("error = %v, want structured canceled error", err)
	}
	if factorerr.ExitCode(err) != factorerr.ExitPartial {
		t.Fatalf("exit code = %d, want %d", factorerr.ExitCode(err), factorerr.ExitPartial)
	}
}
