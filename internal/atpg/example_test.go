package atpg_test

import (
	"fmt"

	"factor/internal/atpg"
	"factor/internal/fault"
	"factor/internal/netlist"
)

// ExampleEngine_Run generates tests for a small sequential circuit with
// an 8-worker engine. The parallel engine is deterministic: the
// coverage and test count printed here are identical for any Workers
// value (that is why a fixed-output example can exercise the parallel
// path at all).
func ExampleEngine_Run() {
	// Two inputs feeding an XOR observed directly and through a
	// flip-flop: one output needs a 2-cycle test.
	n := netlist.New("tiny")
	a := n.AddInput("a")
	b := n.AddInput("b")
	x := n.AddGate(netlist.Xor, a, b)
	ff := n.AddGate(netlist.DFF, x)
	n.AddOutput("now", x)
	n.AddOutput("later", ff)

	faults := fault.Universe(n)
	eng := atpg.New(n, atpg.Options{Seed: 1, Workers: 8})
	res := eng.Run(faults)

	fmt.Printf("faults: %d\n", res.TotalFaults)
	fmt.Printf("coverage: %.0f%%\n", res.Coverage())
	fmt.Printf("all tests detect something: %v\n", len(res.Tests) > 0)
	// Output:
	// faults: 6
	// coverage: 100%
	// all tests detect something: true
}
