package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"factor/internal/cli"
	"factor/internal/factorerr"
	"factor/internal/failpoint"
	"factor/internal/fault"
	"factor/internal/netlist"
	"factor/internal/telemetry"
)

// ChildMain is the shard-child entry hook: when $FACTOR_SHARD_SPEC is
// set, the process is a shard worker — run the spec, stream the result
// frame to stdout, and exit without returning. Call it first thing in
// main of every binary used as a shard host (and from a dedicated test
// body in test binaries). When the marker is absent it returns
// immediately and the process proceeds as the tool it is.
func ChildMain() {
	specJSON := os.Getenv(EnvSpec)
	if specJSON == "" {
		return
	}
	var spec Spec
	if err := json.Unmarshal([]byte(specJSON), &spec); err != nil {
		fmt.Fprintf(os.Stderr, "shard child: %s: %v\n", EnvSpec, err)
		os.Exit(factorerr.ExitError)
	}
	res, err := RunSpec(context.Background(), spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shard child %d/%d: %s\n", spec.Index, spec.Shards, factorerr.FormatChain(err))
		os.Exit(factorerr.ExitCode(err))
	}
	frame, err := json.Marshal(res)
	if err != nil {
		fmt.Fprintf(os.Stderr, "shard child %d/%d: encoding result: %v\n", spec.Index, spec.Shards, err)
		os.Exit(factorerr.ExitError)
	}
	fmt.Fprintf(os.Stdout, "%s%s\n", resultMarker, frame)
	os.Exit(factorerr.ExitOK)
}

// RunSpec executes one shard's work in-process: map the snapshot,
// re-derive the fault universe, regenerate the stimulus, and run
// first-detection simulation over the spec's range. Exported for the
// orchestrator tests; production children reach it through ChildMain.
func RunSpec(ctx context.Context, spec Spec) (*Result, error) {
	// Chaos goes live before any real work so injected failures cover
	// snapshot loading too; the kill site itself draws on the pure
	// per-shard key, so which shards die is topology-reproducible.
	if _, err := cli.ActivateEnvFailpoints(); err != nil {
		return nil, err
	}
	if err := failpoint.HitKey("shard.child", spec.ChaosKey); err != nil {
		return nil, factorerr.Wrap(factorerr.StageFaultSim, factorerr.CodeShardDied, err)
	}

	// Span buffering is per-spec opt-in; a nil handle makes every span
	// call a no-op, so the untraced path stays untouched.
	var tel *telemetry.Telemetry
	if spec.Trace {
		tel = telemetry.New()
		tel.EnableTrace()
	}

	sp := tel.StartSpan("shard.snapshot").WithArg("path", spec.Snapshot)
	nl, err := netlist.ReadSnapshotFile(spec.Snapshot)
	sp.End()
	if err != nil {
		return nil, err
	}
	faults := fault.Universe(nl)
	if len(faults) != spec.FaultTotal {
		return nil, factorerr.New(factorerr.StageFaultSim, factorerr.CodeInternal,
			"snapshot %s yields %d faults, parent planned %d — stale snapshot?",
			spec.Snapshot, len(faults), spec.FaultTotal)
	}
	if spec.FaultLo < 0 || spec.FaultHi < spec.FaultLo || spec.FaultHi > len(faults) ||
		spec.FaultLo%BatchSize != 0 {
		return nil, factorerr.New(factorerr.StageFaultSim, factorerr.CodeInternal,
			"bad shard range [%d,%d) over %d faults", spec.FaultLo, spec.FaultHi, len(faults))
	}
	sp = tel.StartSpan("shard.stimulus")
	seqs := fault.RandomSequences(nl, spec.Seed, spec.Seqs, spec.Cycles)
	sp.End()

	sp = tel.StartSpan("shard.sim").WithArg("range", fmt.Sprintf("[%d,%d)", spec.FaultLo, spec.FaultHi))
	first, stats, errs := fault.FirstDetections(ctx, nl, faults[spec.FaultLo:spec.FaultHi], seqs, spec.Workers, time.Time{})
	sp.End()
	if ctx.Err() != nil {
		return nil, factorerr.Wrap(factorerr.StageFaultSim, factorerr.CodeCanceled, ctx.Err())
	}
	res := &Result{Index: spec.Index, First: first, Stats: stats, Spans: tel.ExportSpans()}
	for _, e := range errs {
		res.Errors = append(res.Errors, e.Error())
	}
	res.Quarantined = quarantinedCount(len(first), len(errs))
	return res, nil
}

// quarantinedCount estimates quarantined faults from batch errors: each
// quarantined batch is a full BatchSize slice except possibly the last
// of the range. The exact per-batch membership is not streamed (the
// first vector already encodes it: a quarantined batch reports -1 for
// every lane), so this count is an upper bound used for degradation
// accounting, deterministic for a deterministic error set.
func quarantinedCount(rangeLen, batchErrs int) int {
	if batchErrs == 0 {
		return 0
	}
	n := batchErrs * BatchSize
	if n > rangeLen {
		n = rangeLen
	}
	return n
}
