package shard

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"slices"
	"testing"
	"time"

	"factor/internal/arm"
	"factor/internal/cli"
	"factor/internal/factorerr"
	"factor/internal/fault"
	"factor/internal/netlist"
)

func TestPartition(t *testing.T) {
	for _, tc := range []struct{ n, shards int }{
		{0, 1}, {0, 4}, {1, 1}, {62, 3}, {63, 1}, {63, 2}, {126, 2}, {126, 4},
		{1000, 1}, {1000, 2}, {1000, 3}, {1000, 7}, {1000, 40},
	} {
		ranges := Partition(tc.n, tc.shards)
		if len(ranges) != max(tc.shards, 1) {
			t.Fatalf("Partition(%d,%d): %d ranges", tc.n, tc.shards, len(ranges))
		}
		next := 0
		for i, r := range ranges {
			if r[0] != next || r[1] < r[0] {
				t.Fatalf("Partition(%d,%d): range %d is %v, want start %d", tc.n, tc.shards, i, r, next)
			}
			if r[0]%BatchSize != 0 {
				t.Fatalf("Partition(%d,%d): range %d start %d not batch-aligned", tc.n, tc.shards, i, r[0])
			}
			next = r[1]
		}
		if next != tc.n {
			t.Fatalf("Partition(%d,%d): covers %d of %d faults", tc.n, tc.shards, next, tc.n)
		}
		if !reflect.DeepEqual(ranges, Partition(tc.n, tc.shards)) {
			t.Fatalf("Partition(%d,%d) is not deterministic", tc.n, tc.shards)
		}
	}
}

// shardWorkload synthesizes a real module, snapshots it, and returns
// the netlist, its collapsed universe and the snapshot path.
func shardWorkload(t *testing.T) (*netlist.Netlist, []fault.Fault, string) {
	t.Helper()
	res, err := arm.SynthesizeModule("arm_alu", 8)
	if err != nil {
		t.Fatal(err)
	}
	nl := res.Netlist
	faults := fault.Universe(nl)
	if len(faults) < 3*BatchSize {
		t.Fatalf("workload too small for sharding tests: %d faults", len(faults))
	}
	snap := filepath.Join(t.TempDir(), "alu.snap")
	if err := nl.WriteSnapshotFile(snap); err != nil {
		t.Fatal(err)
	}
	return nl, faults, snap
}

const testSeed = 0xC0FFEE

// TestShardChildExec is not a test: it is the body the orchestrator
// tests re-exec the test binary into. ChildMain exits the process when
// the spec marker is present and falls through to a skip otherwise.
func TestShardChildExec(t *testing.T) {
	ChildMain()
	t.Skip("shard-child body; spawned by orchestrator tests")
}

func testSpawner(t *testing.T) Spawner {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return ExecSpawner(exe, "-test.run", "^TestShardChildExec$", "-test.count=1")
}

// TestRunSpecMatchesDirect pins the child computation itself: running
// the full range in-process over the snapshot must reproduce a direct
// FirstDetections run over the original netlist, including the
// invariant work counters.
func TestRunSpecMatchesDirect(t *testing.T) {
	nl, faults, snap := shardWorkload(t)
	seqs := fault.RandomSequences(nl, testSeed, 8, 6)
	wantFirst, wantStats, errs := fault.FirstDetections(context.Background(), nl, faults, seqs, 1, time.Time{})
	if len(errs) != 0 {
		t.Fatalf("direct run errored: %v", errs)
	}

	res, err := RunSpec(context.Background(), Spec{
		Snapshot: snap, Module: "arm_alu", Shards: 1,
		FaultLo: 0, FaultHi: len(faults), FaultTotal: len(faults),
		Seqs: 8, Cycles: 6, Seed: testSeed, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(res.First, wantFirst) {
		t.Fatal("RunSpec first-detection vector differs from direct run")
	}
	if Invariant(res.Stats) != Invariant(wantStats) {
		t.Fatalf("work counters differ: %+v vs %+v", Invariant(res.Stats), Invariant(wantStats))
	}
}

// TestRunSpecRejectsStaleSnapshot: a fault-count mismatch must be a
// structured internal error, not silent range misalignment.
func TestRunSpecRejectsStaleSnapshot(t *testing.T) {
	_, faults, snap := shardWorkload(t)
	_, err := RunSpec(context.Background(), Spec{
		Snapshot: snap, FaultLo: 0, FaultHi: 1, FaultTotal: len(faults) + 5,
		Seqs: 1, Cycles: 1, Seed: 1, Workers: 1,
	})
	if !errors.Is(err, &factorerr.Error{Code: factorerr.CodeInternal}) {
		t.Fatalf("got %v, want internal error", err)
	}
}

// TestShardedRunByteIdentity is the heart of the tentpole: every
// shards × workers × procs combination must merge to exactly the
// single-process result — same first-detection vector, same invariant
// work counters.
func TestShardedRunByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs child processes; skipped in -short")
	}
	nl, faults, snap := shardWorkload(t)
	seqs := fault.RandomSequences(nl, testSeed, 8, 6)
	wantFirst, wantStats, _ := fault.FirstDetections(context.Background(), nl, faults, seqs, 1, time.Time{})
	spawn := testSpawner(t)

	for _, shards := range []int{1, 2, 3} {
		for _, workers := range []int{1, 2} {
			for _, procs := range []int{0, 1} {
				res := Run(context.Background(), Options{
					Shards: shards, Workers: workers, Procs: procs,
					Seqs: 8, Cycles: 6, Seed: testSeed,
					Module: "arm_alu", Snapshot: snap,
				}, len(faults), spawn)
				if len(res.Died) != 0 || len(res.Errors) != 0 {
					t.Fatalf("shards=%d workers=%d procs=%d: unexpected degradation: died=%v errs=%v",
						shards, workers, procs, res.Died, res.Errors)
				}
				if !slices.Equal(res.First, wantFirst) {
					t.Errorf("shards=%d workers=%d procs=%d: first-detection vector differs from single-process run",
						shards, workers, procs)
				}
				if res.Work != Invariant(wantStats) {
					t.Errorf("shards=%d workers=%d procs=%d: work counters %+v, want %+v",
						shards, workers, procs, res.Work, Invariant(wantStats))
				}
			}
		}
	}
}

// TestShardKillDegradesDeterministically: under an injected shard.child
// kill, the same shards die on every repetition (the draw is keyed by
// the pure per-shard chaos key) and their ranges degrade to
// all-undetected while surviving shards return intact results.
func TestShardKillDegradesDeterministically(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs child processes; skipped in -short")
	}
	_, faults, snap := shardWorkload(t)
	spawn := testSpawner(t)
	env := append(os.Environ(), cli.EnvFailpoints+"=shard.child=kill:0.5:77")

	run := func() *RunResult {
		return Run(context.Background(), Options{
			Shards: 3, Workers: 1, Seqs: 4, Cycles: 4, Seed: testSeed,
			Module: "arm_alu", Snapshot: snap, ChaosSalt: 42, Env: env,
		}, len(faults), spawn)
	}
	a, b := run(), run()
	if !slices.Equal(a.Died, b.Died) {
		t.Fatalf("shard deaths not deterministic: %v vs %v", a.Died, b.Died)
	}
	if len(a.Died) == 0 || len(a.Died) == 3 {
		t.Fatalf("kill probability 0.5 over 3 shards killed %d — draw key wiring suspect", len(a.Died))
	}
	if !slices.Equal(a.First, b.First) {
		t.Fatal("degraded first-detection vectors differ between identical runs")
	}
	for _, di := range a.Died {
		lo, hi := a.Ranges[di][0], a.Ranges[di][1]
		for i := lo; i < hi; i++ {
			if a.First[i] != -1 {
				t.Fatalf("dead shard %d fault %d reports detection %d, want -1", di, i, a.First[i])
			}
		}
	}
	if a.Quarantined == 0 || !errors.Is(errors.Join(a.Errors...), &factorerr.Error{Code: factorerr.CodeShardDied}) {
		t.Fatalf("degradation not surfaced: quarantined=%d errs=%v", a.Quarantined, a.Errors)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.journal")
	fp := Fingerprint{Seed: 7, Seqs: 8, Cycles: 6}
	if err := CreateJournal(path, fp); err != nil {
		t.Fatal(err)
	}
	want := []Outcome{
		{Design: 0, Seed: 7, Module: "top", Gates: 10, Faults: 20, Detected: 15,
			Digest: "00000000deadbeef", Work: WorkCounters{Batches: 1, Cycles: 48, Events: 999}},
		{Design: 2, Seed: 9, Module: "top", Faults: 0, Vacuous: true},
	}
	for _, o := range want {
		if err := AppendOutcome(path, o); err != nil {
			t.Fatal(err)
		}
	}
	got, err := LoadOutcomes(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != want[0] || got[2] != want[1] {
		t.Fatalf("journal round-trip mismatch: %+v", got)
	}

	// Fingerprint mismatch is checkpoint-corrupt.
	if _, err := LoadOutcomes(path, Fingerprint{Seed: 8, Seqs: 8, Cycles: 6}); !errors.Is(err, &factorerr.Error{Code: factorerr.CodeCheckpointCorrupt}) {
		t.Fatalf("fingerprint mismatch: got %v", err)
	}
	// Missing file surfaces os.ErrNotExist for "fresh start" detection.
	if _, err := LoadOutcomes(path+".missing", fp); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing journal: got %v", err)
	}
}

// TestJournalTornTail: a crash mid-append leaves a torn last line; the
// loader must serve every frame before it and drop the tail.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.journal")
	fp := Fingerprint{Seed: 1, Seqs: 2, Cycles: 3}
	if err := CreateJournal(path, fp); err != nil {
		t.Fatal(err)
	}
	if err := AppendOutcome(path, Outcome{Design: 0, Detected: 3}); err != nil {
		t.Fatal(err)
	}
	if err := AppendOutcome(path, Outcome{Design: 1, Detected: 4}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cutting only the trailing newline leaves a complete CRC-valid
	// frame, which the loader rightly serves.
	if got, err := LoadOutcomes(tornCopy(t, data, 1), fp); err != nil || len(got) != 2 {
		t.Fatalf("newline-only cut: got %v, %v", got, err)
	}
	// Tear progressively deeper into the final frame (its line spans
	// (lastLineStart, len(data)): CRC-byte loss, half a frame, all but
	// its first byte.
	lastLine := len(data) - 1 - lastIndexByte(data[:len(data)-1], '\n')
	for _, cut := range []int{2, lastLine / 2, lastLine - 1} {
		got, err := LoadOutcomes(tornCopy(t, data, cut), fp)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if _, ok := got[1]; ok {
			t.Fatalf("cut %d: torn final frame served", cut)
		}
		if got[0].Detected != 3 {
			t.Fatalf("cut %d: intact first frame lost (%+v)", cut, got)
		}
	}
}

func lastIndexByte(data []byte, b byte) int {
	for i := len(data) - 1; i >= 0; i-- {
		if data[i] == b {
			return i
		}
	}
	return -1
}

func tornCopy(t *testing.T, data []byte, cut int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "torn.journal")
	if err := os.WriteFile(path, data[:len(data)-cut], 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDigestFirstDistinguishes(t *testing.T) {
	a := DigestFirst([]int{-1, 0, 5})
	if a != DigestFirst([]int{-1, 0, 5}) {
		t.Fatal("digest not deterministic")
	}
	if a == DigestFirst([]int{-1, 0, 6}) || a == DigestFirst([]int{-1, 0}) {
		t.Fatal("digest collides on trivial variations")
	}
}

// TestTraceSpansCrossProcess: with Options.Trace set, every surviving
// shard ships its span buffer back through the result frame — across a
// real process boundary — and tracing never perturbs the merged
// detections or work counters.
func TestTraceSpansCrossProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs child processes; skipped in -short")
	}
	_, faults, snap := shardWorkload(t)
	spawn := testSpawner(t)
	base := Options{
		Shards: 2, Workers: 1,
		Seqs: 4, Cycles: 4, Seed: testSeed,
		Module: "arm_alu", Snapshot: snap,
	}

	plain := Run(context.Background(), base, len(faults), spawn)
	traced := base
	traced.Trace = true
	res := Run(context.Background(), traced, len(faults), spawn)

	if !slices.Equal(res.First, plain.First) || res.Work != plain.Work {
		t.Fatal("tracing changed the merged result")
	}
	for i, spans := range plain.Spans {
		if len(spans) != 0 {
			t.Fatalf("untraced shard %d returned %d spans", i, len(spans))
		}
	}
	for i, spans := range res.Spans {
		names := map[string]bool{}
		for _, sp := range spans {
			names[sp.Name] = true
			if sp.Dur < 0 {
				t.Fatalf("shard %d span %q has negative duration", i, sp.Name)
			}
		}
		for _, want := range []string{"shard.snapshot", "shard.stimulus", "shard.sim"} {
			if !names[want] {
				t.Fatalf("shard %d spans missing %q (got %v)", i, want, names)
			}
		}
	}
}
