// Package shard implements multi-process sharded fault simulation: a
// parent orchestrator partitions a design's collapsed fault universe
// into batch-aligned contiguous ranges, re-execs one worker process per
// range over a shared read-only compiled-netlist snapshot (see
// netlist.Snapshot), streams each shard's first-detection vector and
// work counters back over its stdout pipe, and merges them
// deterministically.
//
// Determinism contract: a fault's first-detecting sequence index is an
// intrinsic property of (fault, sequence list) — independent of
// batching, worker count and process boundaries (see
// fault.FirstDetections). Shard ranges are aligned to the engine's
// 63-fault batch size, so every batch a shard simulates is exactly a
// batch the single-process run simulates, and the per-batch work
// counters (batches, cycles, events, flop heals) sum to bit-identical
// totals for ANY shards × workers combination. The one engine counter
// that is not shard-invariant is the good-trace cycle count — each
// shard computes its own shared traces — so merged results expose it
// separately from the invariant WorkCounters and reports exclude it.
//
// Failure policy: a shard process that dies (injected kill, crash,
// decode failure) degrades rather than failing the design — its fault
// range reports no random detections and the death is recorded as a
// structured error and in the merged Died list. Degradation is
// deterministic when the cause is (failpoints are keyed by pure
// per-shard draw keys, never by scheduling).
package shard

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"factor/internal/factorerr"
	"factor/internal/fault"
	"factor/internal/telemetry"
)

// BatchSize is the fault-simulation engine's lane-batch size. Shard
// ranges are aligned to it so per-shard work counters merge
// bit-identically (see the package comment).
const BatchSize = 63

// EnvSpec carries the JSON-encoded Spec to a shard child process; its
// presence is what marks a process as a shard child (see ChildMain).
const EnvSpec = "FACTOR_SHARD_SPEC"

// resultMarker frames the child's result line on stdout, so the parent
// can pick it out of whatever else the child runtime prints (a re-exec'd
// test binary, for instance, appends its own harness output).
const resultMarker = "FACTOR-SHARD-RESULT1 "

// Spec describes one shard's slice of work. It is deliberately
// self-contained and tiny: the child re-derives the fault universe from
// the snapshot and regenerates the stimulus from the seed, so nothing
// bulky crosses the process boundary.
type Spec struct {
	// Snapshot is the path of the compiled-netlist snapshot file every
	// shard of the design maps read-only.
	Snapshot string `json:"snapshot"`
	// Module names the design (diagnostics only).
	Module string `json:"module"`
	// Index/Shards locate this shard in the topology (diagnostics and
	// chaos keying; the work is fully described by FaultLo/FaultHi).
	Index  int `json:"index"`
	Shards int `json:"shards"`
	// FaultLo/FaultHi bound this shard's half-open range into the
	// collapsed fault universe of the snapshot netlist. FaultLo is a
	// multiple of BatchSize.
	FaultLo int `json:"fault_lo"`
	FaultHi int `json:"fault_hi"`
	// FaultTotal is the parent's universe size; the child cross-checks
	// it so a stale snapshot cannot silently misalign ranges.
	FaultTotal int `json:"fault_total"`
	// Seqs random sequences of Cycles vectors are regenerated from Seed
	// (fault.RandomSequences) — identical in every shard.
	Seqs   int    `json:"seqs"`
	Cycles int    `json:"cycles"`
	Seed   uint64 `json:"seed"`
	// Workers is the in-process pool size for fault.FirstDetections.
	Workers int `json:"workers"`
	// ChaosKey seeds the shard.child failpoint draw: a pure function of
	// (design, shard index) chosen by the parent, so which shards die
	// under a kill spec is invariant under scheduling.
	ChaosKey uint64 `json:"chaos_key"`
	// Trace asks the child to buffer wall-clock spans and ship them back
	// in the result frame (Result.Spans) for cross-process trace
	// assembly. Diagnostic only: it never changes First or Stats.
	Trace bool `json:"trace,omitempty"`
}

// Result is what one shard streams back: the first-detection index for
// every fault in [FaultLo, FaultHi) and the engine's work counters for
// exactly that slice of batches.
type Result struct {
	Index int `json:"index"`
	// First[i] is the first detecting sequence for fault FaultLo+i, -1
	// if none.
	First []int          `json:"first"`
	Stats fault.SimStats `json:"stats"`
	// Quarantined counts faults in quarantined batches (panic or
	// injected batch failure inside the shard).
	Quarantined int `json:"quarantined"`
	// Errors are the shard's structured batch errors, in batch order.
	Errors []string `json:"errors,omitempty"`
	// Spans are the child's wall-clock spans in its own clock domain,
	// present only when the spec asked for tracing. The section is
	// version-tolerant by construction: older parents ignore the unknown
	// JSON field, older children simply never emit it.
	Spans []telemetry.SpanRecord `json:"spans,omitempty"`
}

// WorkCounters are the shard-invariant engine counters: identical
// totals for any shards × workers topology. TraceCycles is deliberately
// absent — each shard computes its own good traces, so that counter
// scales with the shard count and lives outside the canonical merge.
type WorkCounters struct {
	Batches   uint64 `json:"batches"`
	Cycles    uint64 `json:"cycles"`
	Events    uint64 `json:"events"`
	FlopHeals uint64 `json:"flop_heals"`
}

// Add folds o into w.
func (w *WorkCounters) Add(o WorkCounters) {
	w.Batches += o.Batches
	w.Cycles += o.Cycles
	w.Events += o.Events
	w.FlopHeals += o.FlopHeals
}

// Invariant projects the shard-invariant counters out of engine stats.
func Invariant(s fault.SimStats) WorkCounters {
	return WorkCounters{Batches: s.Batches, Cycles: s.Cycles, Events: s.Events, FlopHeals: s.FlopHeals}
}

// Partition splits n faults into at most shards contiguous half-open
// ranges, each starting on a BatchSize boundary, batches spread as
// evenly as possible. Every fault is covered exactly once; trailing
// ranges are empty when there are fewer batches than shards. The split
// is a pure function of (n, shards).
func Partition(n, shards int) [][2]int {
	if shards < 1 {
		shards = 1
	}
	nbatches := (n + BatchSize - 1) / BatchSize
	out := make([][2]int, shards)
	for i := 0; i < shards; i++ {
		lo := min(i*nbatches/shards*BatchSize, n)
		hi := min((i+1)*nbatches/shards*BatchSize, n)
		out[i] = [2]int{lo, hi}
	}
	return out
}

// Spawner runs one shard child to completion and returns its decoded
// Result. env is the complete child environment except EnvSpec, which
// the spawner adds. A non-nil error means the shard died (killed,
// crashed, or returned garbage) and the caller must degrade its range.
type Spawner func(ctx context.Context, spec Spec, env []string) (*Result, error)

// ExecSpawner returns a Spawner that re-execs argv with the spec in the
// environment. The child must call ChildMain first thing in main (or,
// for a test binary, route into a test that calls it). Child stderr
// passes through to the parent's; stdout is the result pipe.
func ExecSpawner(argv0 string, args ...string) Spawner {
	return func(ctx context.Context, spec Spec, env []string) (*Result, error) {
		specJSON, err := json.Marshal(spec)
		if err != nil {
			return nil, factorerr.Wrap(factorerr.StageFaultSim, factorerr.CodeIO, err)
		}
		base := env
		if base == nil {
			base = os.Environ()
		}
		cmd := exec.CommandContext(ctx, argv0, args...)
		cmd.Env = append(append([]string{}, base...), EnvSpec+"="+string(specJSON))
		cmd.Stderr = os.Stderr
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, factorerr.Wrap(factorerr.StageFaultSim, factorerr.CodeIO, err)
		}
		if err := cmd.Start(); err != nil {
			return nil, factorerr.Wrap(factorerr.StageFaultSim, factorerr.CodeIO, err)
		}

		var res *Result
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, resultMarker) {
				continue
			}
			r := &Result{}
			if err := json.Unmarshal([]byte(line[len(resultMarker):]), r); err != nil {
				res = nil
				break
			}
			res = r
		}
		waitErr := cmd.Wait()
		if waitErr != nil {
			return nil, factorerr.New(factorerr.StageFaultSim, factorerr.CodeShardDied,
				"shard %d/%d of %s died: %v", spec.Index, spec.Shards, spec.Module, waitErr)
		}
		if res == nil {
			return nil, factorerr.New(factorerr.StageFaultSim, factorerr.CodeShardDied,
				"shard %d/%d of %s exited without a result frame", spec.Index, spec.Shards, spec.Module)
		}
		return res, nil
	}
}

// SelfExecSpawner re-execs the current binary with no arguments —
// the production spawner for commands whose main starts with
// ChildMain.
func SelfExecSpawner() (Spawner, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, factorerr.Wrap(factorerr.StageFaultSim, factorerr.CodeIO, err)
	}
	return ExecSpawner(exe), nil
}

// Options configure a sharded run of one design.
type Options struct {
	Shards   int    // number of shard processes (>=1)
	Workers  int    // in-process pool size per shard
	Seqs     int    // random sequences per design
	Cycles   int    // cycles per sequence
	Seed     uint64 // stimulus seed
	Module   string // design name for diagnostics
	Snapshot string // compiled-netlist snapshot path
	// ChaosSalt seeds per-shard failpoint draw keys; derive it from the
	// design identity so shard deaths are scheduling-invariant.
	ChaosSalt uint64
	// Procs bounds concurrently running shard processes (0: all at
	// once).
	Procs int
	// Env is the child environment (cli.ChildEnv output); nil inherits
	// the parent's as-is.
	Env []string
	// Trace asks every shard child to ship its span buffer back for
	// cross-process trace assembly (see RunResult.Spans).
	Trace bool
}

// RunResult is the deterministic merge of all shards of one design.
type RunResult struct {
	// First is the per-fault first-detection vector over the whole
	// universe, identical to a single-process fault.FirstDetections run.
	First []int
	// Work are the shard-invariant engine counters summed over shards.
	Work WorkCounters
	// TraceCycles is the total good-trace work including per-shard
	// recomputation — diagnostic only, NOT topology-invariant.
	TraceCycles uint64
	// Ranges is the partition, one [lo,hi) per shard.
	Ranges [][2]int
	// Died lists shards that terminated without a result; their ranges
	// degraded to all-undetected.
	Died []int
	// Quarantined counts faults whose batch was quarantined inside a
	// surviving shard or belonged to a dead shard.
	Quarantined int
	// Errors are the structured degradations, shards in index order.
	Errors []error
	// Spans holds each surviving shard's span buffer (nil for dead or
	// empty shards), indexed like Ranges. Timestamps are in each child's
	// own clock domain; the orchestrator re-bases them when merging into
	// one trace (telemetry.MergeProcess).
	Spans [][]telemetry.SpanRecord
}

// Detected counts faults with a first detection.
func (r *RunResult) Detected() int {
	n := 0
	for _, f := range r.First {
		if f >= 0 {
			n++
		}
	}
	return n
}

// Specs returns the per-shard work descriptions for one design: one
// Spec per Partition range, in shard-index order. Empty ranges get a
// Spec with FaultLo == FaultHi; callers skip spawning those.
func (o Options) Specs(nFaults int) []Spec {
	ranges := Partition(nFaults, o.Shards)
	specs := make([]Spec, len(ranges))
	for i, r := range ranges {
		specs[i] = o.spec(i, len(ranges), r[0], r[1], nFaults)
	}
	return specs
}

// ShardOutcome pairs one shard's decoded result with its spawn error —
// the unit a scheduler collects before Merge.
type ShardOutcome struct {
	Res *Result
	Err error
}

// Merge folds per-shard outcomes into the design result, in shard-index
// order regardless of the order the shards completed in: the output is
// a pure function of the slots. A slot with a non-nil error (or a
// malformed result) degrades its range to all-undetected. slots[i]
// corresponds to Partition(nFaults, len(slots))[i]; empty ranges may
// hold a zero ShardOutcome.
func Merge(module string, nFaults int, slots []ShardOutcome) *RunResult {
	ranges := Partition(nFaults, len(slots))
	out := &RunResult{
		First:  make([]int, nFaults),
		Ranges: ranges,
		Spans:  make([][]telemetry.SpanRecord, len(slots)),
	}
	for i := range out.First {
		out.First[i] = -1
	}
	for i, s := range slots {
		lo, hi := ranges[i][0], ranges[i][1]
		switch {
		case lo == hi:
		case s.Err != nil:
			out.Died = append(out.Died, i)
			out.Quarantined += hi - lo
			out.Errors = append(out.Errors, s.Err)
		case s.Res == nil || len(s.Res.First) != hi-lo:
			got := -1
			if s.Res != nil {
				got = len(s.Res.First)
			}
			out.Died = append(out.Died, i)
			out.Quarantined += hi - lo
			out.Errors = append(out.Errors, factorerr.New(factorerr.StageFaultSim, factorerr.CodeShardDied,
				"shard %d of %s returned %d detections for a %d-fault range", i, module, got, hi-lo))
		default:
			copy(out.First[lo:hi], s.Res.First)
			out.Spans[i] = s.Res.Spans
			out.Work.Add(Invariant(s.Res.Stats))
			out.TraceCycles += s.Res.Stats.TraceCycles
			out.Quarantined += s.Res.Quarantined
			for _, msg := range s.Res.Errors {
				out.Errors = append(out.Errors, factorerr.New(factorerr.StageFaultSim, factorerr.CodePartial,
					"shard %d of %s: %s", i, module, msg))
			}
		}
	}
	return out
}

// Run executes one design's fault simulation across opts.Shards child
// processes and merges the results. nFaults is the size of the design's
// collapsed fault universe (the child re-derives and cross-checks it).
// The merge is performed in shard-index order regardless of completion
// order, so the output is deterministic for any Procs setting.
func Run(ctx context.Context, opts Options, nFaults int, spawn Spawner) *RunResult {
	specs := opts.Specs(nFaults)
	slots := make([]ShardOutcome, len(specs))
	procs := opts.Procs
	if procs <= 0 || procs > len(specs) {
		procs = len(specs)
	}
	sem := make(chan struct{}, procs)
	done := make(chan int)
	for i, spec := range specs {
		go func(i int, spec Spec) {
			sem <- struct{}{}
			defer func() { <-sem; done <- i }()
			if spec.FaultLo == spec.FaultHi {
				return
			}
			res, err := spawn(ctx, spec, opts.Env)
			slots[i] = ShardOutcome{Res: res, Err: err}
		}(i, spec)
	}
	for range specs {
		<-done
	}
	return Merge(opts.Module, nFaults, slots)
}

func (o Options) spec(index, shards, lo, hi, total int) Spec {
	return Spec{
		Snapshot:   o.Snapshot,
		Module:     o.Module,
		Index:      index,
		Shards:     shards,
		FaultLo:    lo,
		FaultHi:    hi,
		FaultTotal: total,
		Seqs:       o.Seqs,
		Cycles:     o.Cycles,
		Seed:       o.Seed,
		Workers:    o.Workers,
		ChaosKey:   chaosKey(o.ChaosSalt, index),
		Trace:      o.Trace,
	}
}

// chaosKey derives the per-shard failpoint draw key: splitmix64 over
// (salt, shard index) — pure, scheduling-independent.
func chaosKey(salt uint64, index int) uint64 {
	z := salt + 0x9E3779B97F4A7C15*uint64(index+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// String renders a partition compactly for diagnostics:
// "[0,630) [630,1197)".
func FormatRanges(ranges [][2]int) string {
	parts := make([]string, len(ranges))
	for i, r := range ranges {
		parts[i] = fmt.Sprintf("[%d,%d)", r[0], r[1])
	}
	return strings.Join(parts, " ")
}
