package shard

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"strings"

	"factor/internal/factorerr"
	"factor/internal/failpoint"
)

// Outcome is the per-design record a corpus run journals and reports.
// Every field is topology-invariant on a healthy run: detected counts
// and the first-detection digest are intrinsic to (design, stimulus),
// and Work excludes the per-shard trace recomputation — so a run
// resumed from this journal under a different shards × workers
// topology still renders byte-identical output.
type Outcome struct {
	Design   int    `json:"design"`
	Seed     int64  `json:"seed"`
	Module   string `json:"module"`
	Gates    int    `json:"gates"`
	Faults   int    `json:"faults"`
	Detected int    `json:"detected"`
	// Digest fingerprints the full per-fault first-detection vector
	// (FNV-1a 64); byte-equal digests mean byte-equal results without
	// journaling megabytes of indices.
	Digest string       `json:"first_digest"`
	Work   WorkCounters `json:"work"`
	// Quarantined and DiedShards record degradation; both zero on a
	// healthy run.
	Quarantined int `json:"quarantined,omitempty"`
	DiedShards  int `json:"died_shards,omitempty"`
	// Vacuous marks a design with an empty fault universe.
	Vacuous bool `json:"vacuous,omitempty"`
}

// DigestFirst fingerprints a first-detection vector.
func DigestFirst(first []int) string {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range first {
		for i := 0; i < 8; i++ {
			b[i] = byte(uint64(v) >> (8 * i))
		}
		h.Write(b[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// Fingerprint identifies the corpus a journal belongs to. The design
// count and topology are deliberately excluded: results are intrinsic
// per design, so a journal written at -n 2 -shards 1 resumes a -n 4
// -shards 4 run of the same corpus seed exactly.
type Fingerprint struct {
	Seed   int64
	Seqs   int
	Cycles int
}

func (fp Fingerprint) header() string {
	return fmt.Sprintf("factor-corpus-journal v1 seed=%d seqs=%d cycles=%d", fp.Seed, fp.Seqs, fp.Cycles)
}

// journalCorrupt classifies unusable journal state under the existing
// checkpoint taxonomy.
func journalCorrupt(format string, args ...interface{}) error {
	return factorerr.New(factorerr.StageFaultSim, factorerr.CodeCheckpointCorrupt,
		"corpus journal: "+format, args...)
}

// CreateJournal starts an empty journal at path (truncating any
// previous one) with the fingerprint header.
func CreateJournal(path string, fp Fingerprint) error {
	if err := failpoint.Hit("corpus.journal.create"); err != nil {
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err)
	}
	return os.WriteFile(path, []byte(fp.header()+"\n"), 0o644)
}

// AppendOutcome durably appends one completed design to the journal:
// a CRC-framed single JSON line, fsynced before return so a later
// SIGKILL cannot tear it.
func AppendOutcome(path string, o Outcome) error {
	if err := failpoint.Hit("corpus.journal.append"); err != nil {
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err)
	}
	data, err := json.Marshal(o)
	if err != nil {
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err)
	}
	defer f.Close()
	if _, err := fmt.Fprintf(f, "%08x %s\n", crc32.ChecksumIEEE(data), data); err != nil {
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err)
	}
	if err := f.Sync(); err != nil {
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err)
	}
	return f.Close()
}

// LoadOutcomes reads a journal back as a design-index → outcome map.
// The fingerprint must match the header exactly. A torn tail — a
// truncated or CRC-failing final region, the residue of a crash mid-
// append — is dropped deterministically: reading stops at the first bad
// line and everything before it is served. A missing file returns
// os.ErrNotExist unwrapped so callers can distinguish "no journal yet".
func LoadOutcomes(path string, fp Fingerprint) (map[int]Outcome, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, journalCorrupt("%s: empty file", path)
	}
	if got, want := sc.Text(), fp.header(); got != want {
		return nil, journalCorrupt("%s: header %q does not match this corpus (%q)", path, got, want)
	}
	out := map[int]Outcome{}
	for sc.Scan() {
		line := sc.Text()
		crcHex, body, ok := strings.Cut(line, " ")
		if !ok || len(crcHex) != 8 {
			break // torn tail
		}
		var crc uint32
		if _, err := fmt.Sscanf(crcHex, "%08x", &crc); err != nil {
			break
		}
		if crc32.ChecksumIEEE([]byte(body)) != crc {
			break
		}
		var o Outcome
		if err := json.Unmarshal([]byte(body), &o); err != nil {
			break
		}
		out[o.Design] = o
	}
	if err := sc.Err(); err != nil {
		return nil, journalCorrupt("%s: %v", path, err)
	}
	return out, nil
}
