// Package factor is a from-scratch Go reproduction of "FACTOR: A
// Hierarchical Methodology for Functional Test Generation and
// Testability Analysis" (Vedula & Abraham, DATE 2002).
//
// The implementation lives under internal/: a Verilog front end
// (internal/verilog), the def-use analysis data structure
// (internal/design), RTL-to-gate synthesis (internal/synth), logic and
// fault simulation (internal/sim, internal/fault), a sequential PODEM
// ATPG engine (internal/atpg), the FACTOR constraint extractor,
// composer, PIER identifier and testability analyzer (internal/core),
// chip-level pattern translation (internal/translate), the ARM2-class
// benchmark SoC (internal/arm) and the experiment harness
// (internal/bench). Command-line tools are under cmd/ and runnable
// examples under examples/.
//
// ATPG, fault simulation and multi-MUT constraint extraction run on a
// worker pool (the -j flag on every CLI; 0 = all CPU cores) and are
// deterministic by construction: results are bit-identical for any
// worker count. DESIGN.md's "Concurrency architecture" section
// documents the worker topology, the state-ownership map and the
// deterministic-merge contract.
//
// See README.md for the architecture overview, DESIGN.md for the
// system inventory and per-experiment index, and EXPERIMENTS.md for the
// paper-versus-measured comparison. The benchmarks in bench_test.go
// regenerate every table of the paper's evaluation.
package factor
